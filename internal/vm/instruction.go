// Package vm implements Nimble's virtual machine runtime (§5): a
// register-based abstract machine with the paper's 20-instruction CISC-style
// ISA (Appendix A, Table A.1), a tagged object model covering tensors,
// storage, algebraic data types and closures, an executable format that
// separates platform-independent bytecode from platform-dependent kernels,
// and an interpreter whose dispatch loop invokes coarse-grained tensor
// operations.
package vm

import "fmt"

// Reg is a virtual register index. The compiler works with an infinite
// register file per function activation ("we provide the abstraction of an
// infinite set of virtual registers", §5.1).
type Reg = int

// Opcode enumerates the VM instruction set. The names and semantics follow
// Table A.1 of the paper exactly; TestISAComplete pins the full set.
type Opcode uint8

const (
	// OpMove moves data from one register to another.
	OpMove Opcode = iota
	// OpRet returns the object in the result register to the caller.
	OpRet
	// OpInvoke invokes a global function.
	OpInvoke
	// OpInvokeClosure invokes a closure.
	OpInvokeClosure
	// OpInvokePacked invokes an optimized operator kernel.
	OpInvokePacked
	// OpAllocStorage allocates a storage block on a specified device.
	OpAllocStorage
	// OpAllocTensor allocates a tensor with a static shape from a storage.
	OpAllocTensor
	// OpAllocTensorReg allocates a tensor given the shape in a register.
	OpAllocTensorReg
	// OpAllocADT allocates a data type using entries from registers.
	OpAllocADT
	// OpAllocClosure allocates a closure with a lowered VM function.
	OpAllocClosure
	// OpGetField gets the value at an index from a VM object.
	OpGetField
	// OpGetTag gets the tag of an ADT constructor.
	OpGetTag
	// OpIf jumps to the true or false offset depending on the condition.
	OpIf
	// OpGoto unconditionally jumps to an offset.
	OpGoto
	// OpLoadConst loads a constant at an index from the constant pool.
	OpLoadConst
	// OpLoadConsti loads a constant immediate.
	OpLoadConsti
	// OpDeviceCopy copies a chunk of data from one device to another.
	OpDeviceCopy
	// OpShapeOf retrieves the shape of a tensor.
	OpShapeOf
	// OpReshapeTensor assigns a new shape to a tensor without altering data.
	OpReshapeTensor
	// OpFatal raises a fatal error in the VM.
	OpFatal

	// NumOpcodes is the instruction count; the paper's ISA has exactly 20.
	NumOpcodes = int(OpFatal) + 1
)

var opcodeNames = [NumOpcodes]string{
	"Move", "Ret", "Invoke", "InvokeClosure", "InvokePacked",
	"AllocStorage", "AllocTensor", "AllocTensorReg", "AllocADT",
	"AllocClosure", "GetField", "GetTag", "If", "Goto",
	"LoadConst", "LoadConsti", "DeviceCopy", "ShapeOf",
	"ReshapeTensor", "Fatal",
}

func (o Opcode) String() string {
	if int(o) < NumOpcodes {
		return opcodeNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Instruction is one decoded VM instruction: a traditional tagged union of
// the op-code and its payload (§5.1). Fields are interpreted per opcode:
//
//	Move          Dst, A
//	Ret           A
//	Invoke        Dst, Imm=func index, Args=arguments
//	InvokeClosure Dst, A=closure, Args=arguments
//	InvokePacked  Dst, Imm=kernel index, B=#outputs (0: kernel allocates;
//	              1: Args[len-1] is the destination buffer), Args=registers
//	AllocStorage  Dst, Imm=size bytes (static) or A=shape register with
//	              DType (dynamic), Device/DeviceID
//	AllocTensor   Dst, A=storage, Imm=offset bytes, Shape, DType
//	AllocTensorReg Dst, A=storage, B=shape register, DType
//	AllocADT      Dst, Imm=tag, Args=fields
//	AllocClosure  Dst, Imm=func index, Args=captured values
//	GetField      Dst, A=object, Imm=field index
//	GetTag        Dst, A=object
//	If            A=test, B=target, Off1=true offset, Off2=false offset
//	Goto          Off1
//	LoadConst     Dst, Imm=constant pool index
//	LoadConsti    Dst, Imm=integer immediate
//	DeviceCopy    Dst, A=source, Device/DeviceID=destination,
//	              Imm=source device encoded as srcType*1000+srcID
//	ShapeOf       Dst, A=tensor
//	ReshapeTensor Dst, A=tensor, B=shape tensor
//	Fatal         (no operands)
type Instruction struct {
	Op   Opcode
	Dst  Reg
	A, B Reg
	Imm  int64
	// Off1 and Off2 are relative jump offsets (If: true/false; Goto: Off1).
	Off1, Off2 int
	// Args is the variadic register list; its presence makes the encoding
	// variable-length (§5.1).
	Args []Reg
	// Shape is the static shape payload of AllocTensor.
	Shape []int
	// DType encodes a tensor.DType for allocation instructions.
	DType uint8
	// Device and DeviceID encode the target ir.Device.
	Device   uint8
	DeviceID int
}

// String renders a readable disassembly line.
func (in Instruction) String() string {
	switch in.Op {
	case OpMove:
		return fmt.Sprintf("Move r%d, r%d", in.Dst, in.A)
	case OpRet:
		return fmt.Sprintf("Ret r%d", in.A)
	case OpInvoke:
		return fmt.Sprintf("Invoke r%d, fn#%d, %v", in.Dst, in.Imm, in.Args)
	case OpInvokeClosure:
		return fmt.Sprintf("InvokeClosure r%d, r%d, %v", in.Dst, in.A, in.Args)
	case OpInvokePacked:
		return fmt.Sprintf("InvokePacked r%d, kernel#%d, outs=%d, %v", in.Dst, in.Imm, in.B, in.Args)
	case OpAllocStorage:
		if in.A >= 0 {
			return fmt.Sprintf("AllocStorage r%d, shape=r%d, dev=%d(%d)", in.Dst, in.A, in.Device, in.DeviceID)
		}
		return fmt.Sprintf("AllocStorage r%d, size=%d, dev=%d(%d)", in.Dst, in.Imm, in.Device, in.DeviceID)
	case OpAllocTensor:
		return fmt.Sprintf("AllocTensor r%d, storage=r%d, shape=%v, off=%d", in.Dst, in.A, in.Shape, in.Imm)
	case OpAllocTensorReg:
		return fmt.Sprintf("AllocTensorReg r%d, storage=r%d, shape=r%d", in.Dst, in.A, in.B)
	case OpAllocADT:
		return fmt.Sprintf("AllocADT r%d, tag=%d, %v", in.Dst, in.Imm, in.Args)
	case OpAllocClosure:
		return fmt.Sprintf("AllocClosure r%d, fn#%d, %v", in.Dst, in.Imm, in.Args)
	case OpGetField:
		return fmt.Sprintf("GetField r%d, r%d, %d", in.Dst, in.A, in.Imm)
	case OpGetTag:
		return fmt.Sprintf("GetTag r%d, r%d", in.Dst, in.A)
	case OpIf:
		return fmt.Sprintf("If r%d==r%d ? %+d : %+d", in.A, in.B, in.Off1, in.Off2)
	case OpGoto:
		return fmt.Sprintf("Goto %+d", in.Off1)
	case OpLoadConst:
		return fmt.Sprintf("LoadConst r%d, const#%d", in.Dst, in.Imm)
	case OpLoadConsti:
		return fmt.Sprintf("LoadConsti r%d, %d", in.Dst, in.Imm)
	case OpDeviceCopy:
		return fmt.Sprintf("DeviceCopy r%d, r%d, dev=%d(%d)", in.Dst, in.A, in.Device, in.DeviceID)
	case OpShapeOf:
		return fmt.Sprintf("ShapeOf r%d, r%d", in.Dst, in.A)
	case OpReshapeTensor:
		return fmt.Sprintf("ReshapeTensor r%d, r%d, shape=r%d", in.Dst, in.A, in.B)
	case OpFatal:
		return "Fatal"
	}
	return fmt.Sprintf("%s ???", in.Op)
}
