package vm

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// VM is an interpreter instance over a loaded executable. "When execution
// begins, the interpreter runs a dispatch loop which checks the op-code and
// executes the appropriate logic, then repeats" (§5.2).
//
// # Session model
//
// A VM is a session: it owns mutable per-execution state — the runtime
// storage pool, recycled frames and scratch slices, the resolved kernel
// table, and the optional profiler — and is therefore NOT safe for
// concurrent use. The Executable underneath it is the opposite: once
// frozen it is immutable, so any number of VMs may share one executable
// and run in parallel, one VM per goroutine. internal/serve wraps this
// pattern as a checkout pool (serve.NewPool); a VM handed to a pool is
// marked pooled and rejects configuration mutators (SetProfiler,
// DisablePool), which must be called before check-in.
type VM struct {
	exe  *Executable
	prof *Profiler
	pool *storagePool
	// maxDepth bounds recursion to catch runaway programs.
	maxDepth int

	// kernels is the executable's kernel table, cached at Invoke so
	// execPacked dispatches by direct index instead of the bounds-and-nil
	// checked exe.Kernel call.
	kernels []PackedFunc
	// freeFrames recycles activation frames (and their register files)
	// across calls; the dynamic models re-enter `loop` once per timestep, so
	// frame churn is hot-path work.
	freeFrames []*frame
	// objScratch stages call arguments for Invoke/InvokeClosure; newFrame
	// copies them into the callee's registers immediately, so one scratch
	// slice serves every call site.
	objScratch []Object
	// tensorScratch stages kernel arguments for execPacked; kernels read
	// their argument slice synchronously and never retain it.
	tensorScratch []*tensor.Tensor
	// keepScratch is releaseFrame's reusable escape set.
	keepScratch map[*Storage]bool
	// pooled marks the VM as checked into a session pool; configuration
	// mutators panic afterwards because another goroutine may hold the
	// session between the caller's observations.
	pooled bool

	// sink, when non-nil, receives a deep copy of every tensor flowing
	// through a stream.emit kernel during the current invocation — the
	// token-by-token delivery path of streaming decode. sinkKernel caches the
	// executable's stream.emit kernel index (-1 when absent) so execPacked
	// pays one integer compare per packed call.
	sink       func(*tensor.Tensor) error
	sinkKernel int
}

// New creates a VM over exe with the runtime storage pool enabled.
func New(exe *Executable) *VM {
	return &VM{exe: exe, pool: newStoragePool(), maxDepth: 1 << 20, keepScratch: map[*Storage]bool{}, sinkKernel: -1}
}

// SetProfiler attaches (or detaches, with nil) a profiler. It must be
// called before the VM is checked into a session pool: afterwards the
// session may be executing on another goroutine, so the mutation panics
// (vet:panic-ok — construction-phase misuse guard, never on a request path).
func (vm *VM) SetProfiler(p *Profiler) {
	if vm.pooled {
		panic("vm: SetProfiler on a pooled VM; attach the profiler before NewPool adopts the session")
	}
	vm.prof = p
}

// DisablePool turns off runtime storage reuse (for the memory-planning
// ablation: every AllocStorage then hits the Go allocator). Like
// SetProfiler it panics once the VM belongs to a session pool
// (vet:panic-ok — construction-phase misuse guard, never on a request path).
func (vm *VM) DisablePool() {
	if vm.pooled {
		panic("vm: DisablePool on a pooled VM; configure the session before NewPool adopts it")
	}
	vm.pool = nil
}

// MarkPooled transitions the VM into the pooled phase: configuration
// mutators panic from now on. Called by internal/serve when a session is
// adopted by a pool; the transition is one-way.
func (vm *VM) MarkPooled() { vm.pooled = true }

// Invoke runs the named function on args and returns its result.
func (vm *VM) Invoke(name string, args ...Object) (Object, error) {
	return vm.InvokeContext(context.Background(), name, args...)
}

// InvokeContext runs the named function on args, checking ctx at call
// boundaries: entry, every function call (OpInvoke/OpInvokeClosure — the
// IR's loop construct is recursion, so long-running dynamic models cross
// one per timestep/tree node), and backward jumps. A background context
// adds no per-instruction work: the done channel is captured once and a
// nil channel skips every check.
func (vm *VM) InvokeContext(ctx context.Context, name string, args ...Object) (Object, error) {
	idx, err := vm.exe.EntryFunc(name)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return vm.run(ctx, idx, args)
}

// InvokeStreamContext runs the named function like InvokeContext, but
// additionally delivers a deep copy of every value flowing through a
// stream.emit operator to sink, in program order, before execution proceeds.
// A sink error aborts the invocation and is returned (wrapped) to the
// caller, so a consumer that goes away cancels the producing loop. The final
// return value is the same Object Invoke would produce: streaming and
// non-streaming runs of a deterministic program yield identical results.
func (vm *VM) InvokeStreamContext(ctx context.Context, sink func(*tensor.Tensor) error, name string, args ...Object) (Object, error) {
	idx, err := vm.exe.EntryFunc(name)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vm.sink = sink
	vm.sinkKernel = -1
	for i, n := range vm.exe.KernelNames {
		if n == ir.OpStreamEmit {
			vm.sinkKernel = i
			break
		}
	}
	defer func() {
		vm.sink = nil
		vm.sinkKernel = -1
	}()
	return vm.run(ctx, idx, args)
}

// InvokeTensors is a convenience wrapper: tensors in, tensor out.
func (vm *VM) InvokeTensors(name string, args ...*tensor.Tensor) (*tensor.Tensor, error) {
	return vm.InvokeTensorsContext(context.Background(), name, args...)
}

// InvokeTensorsContext is the context-aware form of InvokeTensors.
func (vm *VM) InvokeTensorsContext(ctx context.Context, name string, args ...*tensor.Tensor) (*tensor.Tensor, error) {
	objs := make([]Object, len(args))
	for i, a := range args {
		objs[i] = NewTensorObj(a)
	}
	out, err := vm.InvokeContext(ctx, name, objs...)
	if err != nil {
		return nil, err
	}
	to, err := asTensor(out)
	if err != nil {
		return nil, err
	}
	return to.T, nil
}

type frame struct {
	fn   int
	regs []Object
	pc   int
	// dst is the caller register receiving this frame's return value.
	dst Reg
	// allocs records every storage this frame acquired (when the pool is
	// on). Tail-call loops re-enter the frame via a backward Goto without
	// passing OpRet, so frame-exit release alone would leak one iteration's
	// buffers per token; the loop back edge instead recycles everything not
	// reachable from the next iteration's parameters.
	allocs []*Storage
}

func (vm *VM) newFrame(fnIdx int, args []Object) (*frame, error) {
	fn := vm.exe.Funcs[fnIdx]
	if len(args) != fn.NumParams {
		return nil, fmt.Errorf("vm: %s expects %d args, got %d", fn.Name, fn.NumParams, len(args))
	}
	var f *frame
	if n := len(vm.freeFrames); n > 0 {
		f = vm.freeFrames[n-1]
		vm.freeFrames = vm.freeFrames[:n-1]
	} else {
		f = &frame{}
	}
	if cap(f.regs) >= fn.RegCount {
		// Recycled register files were zeroed by freeFrame, so no stale
		// Object can leak into releaseFrame's storage scan.
		f.regs = f.regs[:fn.RegCount]
	} else {
		f.regs = make([]Object, fn.RegCount)
	}
	copy(f.regs, args)
	f.fn = fnIdx
	f.pc = fn.Start
	f.dst = 0
	return f, nil
}

// clearObjects nils a staged-argument scratch slice so its backing array
// does not keep dead Objects reachable between calls.
func clearObjects(s []Object) {
	for i := range s {
		s[i] = nil
	}
}

// freeFrame returns a frame (and its register file) to the recycle list.
const maxFreeFrames = 64

func (vm *VM) freeFrame(f *frame) {
	if len(vm.freeFrames) >= maxFreeFrames {
		return
	}
	// Zero the registers now rather than at reuse: a parked frame must not
	// retain dead tensors across invocations, and releaseFrame's storage
	// scan must never see objects from a previous activation. Registers
	// beyond the current length were zeroed when their frame was freed, so
	// the whole capacity stays nil outside the live window.
	for i := range f.regs {
		f.regs[i] = nil
	}
	for i := range f.allocs {
		f.allocs[i] = nil
	}
	f.allocs = f.allocs[:0]
	vm.freeFrames = append(vm.freeFrames, f)
}

// run executes the dispatch loop starting from fnIdx.
func (vm *VM) run(ctx context.Context, fnIdx int, args []Object) (Object, error) {
	f, err := vm.newFrame(fnIdx, args)
	if err != nil {
		return nil, err
	}
	// Pre-resolve the kernel table once per entry; execPacked then skips the
	// per-call exe.Kernel lookup.
	vm.kernels = vm.exe.kernels
	_, _, ret, err := vm.exec(ctx, []*frame{f}, false)
	return ret, err
}

// exec is the dispatch loop over an explicit frame stack. With stepMode
// false it runs to completion, exactly as run always has. With stepMode
// true it additionally returns yielded=true at every compiled-loop back
// edge — after the edge's recycle and pc advance, so the parked stack's
// parameter registers already hold the next iteration's arguments and the
// loop-carried state (the decode KV-cache) sits in planner-owned buffers
// tracked by the frames' alloc lists. Re-entering exec with the returned
// stack runs exactly one more iteration; StreamRun packages this into a
// step-resumable handle so one session can interleave many streams at
// iteration granularity.
//
// The returned stack is the live remainder: empty after normal completion,
// the parked frames on yield, and whatever was active at the fault on
// error (the caller owns releasing it — see StreamRun.Abort).
func (vm *VM) exec(ctx context.Context, stack []*frame, stepMode bool) (_ []*frame, yielded bool, _ Object, _ error) {
	code := vm.exe.Code
	prof := vm.prof
	// done is nil for context.Background(), making every cancellation check
	// below a single nil comparison on the hot path.
	done := ctx.Done()

	for {
		fr := stack[len(stack)-1]
		if fr.pc < 0 || fr.pc >= len(code) {
			return stack, false, nil, fmt.Errorf("vm: pc %d out of range in %s", fr.pc, vm.exe.Funcs[fr.fn].Name)
		}
		in := code[fr.pc]
		if prof != nil {
			prof.Counts[in.Op]++
		}
		var tStart time.Time
		if prof != nil && prof.Timing && in.Op != OpInvokePacked {
			tStart = time.Now()
		}

		switch in.Op {
		case OpMove:
			fr.regs[in.Dst] = fr.regs[in.A]
			fr.pc++

		case OpRet:
			ret := fr.regs[in.A]
			stack = stack[:len(stack)-1]
			// "Objects are reference counted ... kill(tensor) frees a tensor
			// before its reference count becomes zero due to exiting the
			// frame" (§4.3, §5.2): at frame exit, every storage that does
			// not back the escaping return value goes back to the pool.
			vm.releaseFrame(fr, ret)
			retDst := fr.dst
			vm.freeFrame(fr)
			if len(stack) == 0 {
				if prof != nil && prof.Timing {
					prof.OtherTime += time.Since(tStart)
				}
				return stack, false, ret, nil
			}
			caller := stack[len(stack)-1]
			caller.regs[retDst] = ret
			// caller.pc already advanced past its Invoke.

		case OpInvoke:
			if len(stack) >= vm.maxDepth {
				return stack, false, nil, fmt.Errorf("vm: call stack overflow (%d frames)", len(stack))
			}
			if done != nil {
				select {
				case <-done:
					return stack, false, nil, ctx.Err()
				default:
				}
			}
			// Stage the arguments in the shared scratch: newFrame copies them
			// into the callee's registers before returning.
			callArgs := vm.objScratch[:0]
			for _, r := range in.Args {
				callArgs = append(callArgs, fr.regs[r])
			}
			vm.objScratch = callArgs[:0]
			nf, err := vm.newFrame(int(in.Imm), callArgs)
			clearObjects(callArgs) // drop scratch references so staged args don't outlive their frame
			if err != nil {
				return stack, false, nil, err
			}
			nf.dst = in.Dst
			fr.pc++
			stack = append(stack, nf)

		case OpInvokeClosure:
			if len(stack) >= vm.maxDepth {
				return stack, false, nil, fmt.Errorf("vm: call stack overflow (%d frames)", len(stack))
			}
			if done != nil {
				select {
				case <-done:
					return stack, false, nil, ctx.Err()
				default:
				}
			}
			clo, ok := fr.regs[in.A].(*Closure)
			if !ok {
				return stack, false, nil, fmt.Errorf("vm: InvokeClosure on %T", fr.regs[in.A])
			}
			callArgs := vm.objScratch[:0]
			callArgs = append(callArgs, clo.Free...)
			for _, r := range in.Args {
				callArgs = append(callArgs, fr.regs[r])
			}
			vm.objScratch = callArgs[:0]
			nf, err := vm.newFrame(clo.Fn, callArgs)
			clearObjects(callArgs)
			if err != nil {
				return stack, false, nil, err
			}
			nf.dst = in.Dst
			fr.pc++
			stack = append(stack, nf)

		case OpInvokePacked:
			if err := vm.execPacked(fr, in); err != nil {
				return stack, false, nil, err
			}
			fr.pc++

		case OpAllocStorage:
			if err := vm.execAllocStorage(fr, in); err != nil {
				return stack, false, nil, err
			}
			fr.pc++

		case OpAllocTensor:
			st, err := asStorage(fr.regs[in.A])
			if err != nil {
				return stack, false, nil, err
			}
			t, err := st.tensorAt(tensor.DType(in.DType), tensor.Shape(in.Shape), int(in.Imm))
			if err != nil {
				return stack, false, nil, err
			}
			fr.regs[in.Dst] = &TensorObj{T: t, Device: st.Device, Backing: st}
			fr.pc++

		case OpAllocTensorReg:
			st, err := asStorage(fr.regs[in.A])
			if err != nil {
				return stack, false, nil, err
			}
			shObj, err := asTensor(fr.regs[in.B])
			if err != nil {
				return stack, false, nil, err
			}
			shape, err := shObj.T.ToShape()
			if err != nil {
				return stack, false, nil, err
			}
			t, err := st.tensorAt(tensor.DType(in.DType), shape, 0)
			if err != nil {
				return stack, false, nil, err
			}
			fr.regs[in.Dst] = &TensorObj{T: t, Device: st.Device, Backing: st}
			fr.pc++

		case OpAllocADT:
			fields := make([]Object, len(in.Args))
			for i, r := range in.Args {
				fields[i] = fr.regs[r]
			}
			fr.regs[in.Dst] = &ADT{Tag: int(in.Imm), Fields: fields}
			fr.pc++

		case OpAllocClosure:
			free := make([]Object, len(in.Args))
			for i, r := range in.Args {
				free[i] = fr.regs[r]
			}
			fr.regs[in.Dst] = &Closure{Fn: int(in.Imm), Free: free}
			fr.pc++

		case OpGetField:
			adt, err := asADT(fr.regs[in.A])
			if err != nil {
				return stack, false, nil, err
			}
			if int(in.Imm) < 0 || int(in.Imm) >= len(adt.Fields) {
				return stack, false, nil, fmt.Errorf("vm: GetField index %d out of range (%d fields)", in.Imm, len(adt.Fields))
			}
			fr.regs[in.Dst] = adt.Fields[in.Imm]
			fr.pc++

		case OpGetTag:
			adt, err := asADT(fr.regs[in.A])
			if err != nil {
				return stack, false, nil, err
			}
			fr.regs[in.Dst] = NewTensorObj(tensor.ScalarI64(int64(adt.Tag)))
			fr.pc++

		case OpIf:
			eq, err := scalarEqual(fr.regs[in.A], fr.regs[in.B])
			if err != nil {
				return stack, false, nil, err
			}
			if eq {
				fr.pc += in.Off1
			} else {
				fr.pc += in.Off2
			}

		case OpGoto:
			if in.Off1 < 0 {
				// Backward jump: the only way bytecode loops without a call.
				if done != nil {
					select {
					case <-done:
						return stack, false, nil, ctx.Err()
					default:
					}
				}
				if in.B == 1 {
					// Loop back edge (compiled self tail call): the next
					// iteration's arguments are already in the parameter
					// registers, so everything this frame allocated that they
					// do not reach is this iteration's garbage.
					vm.recycleLoopFrame(fr)
					if stepMode {
						// Park exactly here: one iteration ran, its garbage is
						// recycled, and the pc already points at the loop head.
						fr.pc += in.Off1
						return stack, true, nil, nil
					}
				}
			}
			fr.pc += in.Off1

		case OpLoadConst:
			if int(in.Imm) < 0 || int(in.Imm) >= len(vm.exe.Consts) {
				return stack, false, nil, fmt.Errorf("vm: constant index %d out of range", in.Imm)
			}
			// Constants are shared by reference; kernels never mutate their
			// inputs, which is the copy-on-write discipline of §5.2.
			fr.regs[in.Dst] = &TensorObj{T: vm.exe.Consts[in.Imm], Device: ir.CPU(0)}
			fr.pc++

		case OpLoadConsti:
			fr.regs[in.Dst] = NewTensorObj(tensor.ScalarI64(in.Imm))
			fr.pc++

		case OpDeviceCopy:
			src, err := asTensor(fr.regs[in.A])
			if err != nil {
				return stack, false, nil, err
			}
			dst := ir.Device{Type: ir.DeviceType(in.Device), ID: in.DeviceID}
			// On the host substrate a cross-device copy is a clone into the
			// destination domain; the platform simulator charges transfer
			// cost by CopyBytes.
			fr.regs[in.Dst] = &TensorObj{T: src.T.Clone(), Device: dst}
			if prof != nil {
				prof.CopyBytes += int64(src.T.NumBytes())
			}
			fr.pc++

		case OpShapeOf:
			t, err := asTensor(fr.regs[in.A])
			if err != nil {
				return stack, false, nil, err
			}
			// shape_of reads metadata only, so it works "regardless of which
			// device [the tensor] is placed on" (§4.4) and its result lives
			// on the CPU.
			fr.regs[in.Dst] = NewTensorObj(tensor.ShapeTensor(t.T.Shape()))
			fr.pc++

		case OpReshapeTensor:
			t, err := asTensor(fr.regs[in.A])
			if err != nil {
				return stack, false, nil, err
			}
			shObj, err := asTensor(fr.regs[in.B])
			if err != nil {
				return stack, false, nil, err
			}
			shape, err := shObj.T.ToShape()
			if err != nil {
				return stack, false, nil, err
			}
			rt, err := t.T.Reshape(shape...)
			if err != nil {
				return stack, false, nil, err
			}
			fr.regs[in.Dst] = &TensorObj{T: rt, Device: t.Device}
			fr.pc++

		case OpFatal:
			return stack, false, nil, fmt.Errorf("vm: Fatal raised in %s at pc %d", vm.exe.Funcs[fr.fn].Name, fr.pc)

		default:
			return stack, false, nil, fmt.Errorf("vm: unknown opcode %d", in.Op)
		}

		if prof != nil && prof.Timing && in.Op != OpInvokePacked {
			prof.OtherTime += time.Since(tStart)
		}
	}
}

func (vm *VM) execPacked(fr *frame, in Instruction) error {
	// Kernel pointers were pre-resolved at run() entry; a slot can still be
	// nil after deserialization without LinkKernels, surfaced here.
	idx := int(in.Imm)
	if idx < 0 || idx >= len(vm.kernels) {
		return fmt.Errorf("vm: kernel index %d out of range", idx)
	}
	kernel := vm.kernels[idx]
	if kernel == nil {
		return fmt.Errorf("vm: kernel %q is unlinked; call LinkKernels after deserialization", vm.exe.KernelNames[idx])
	}
	hasOut := in.B == 1
	nIn := len(in.Args)
	if hasOut {
		nIn--
	}
	args := vm.tensorScratch[:0]
	for i := 0; i < nIn; i++ {
		t, err := asTensor(fr.regs[in.Args[i]])
		if err != nil {
			return fmt.Errorf("vm: kernel %s arg %d: %w", vm.exe.KernelNames[in.Imm], i, err)
		}
		args = append(args, t.T)
	}
	vm.tensorScratch = args[:0]
	var out *tensor.Tensor
	var outObj *TensorObj
	dev := ir.CPU(0)
	if hasOut {
		to, err := asTensor(fr.regs[in.Args[nIn]])
		if err != nil {
			return fmt.Errorf("vm: kernel %s out buffer: %w", vm.exe.KernelNames[in.Imm], err)
		}
		out = to.T
		outObj = to
		dev = to.Device
		if to.Backing == nil {
			// The destination is not a VM-allocated buffer. Planned calls
			// always write alloc_tensor results (which carry their storage),
			// so this is an in-place operator routed onto a value that
			// flowed in from outside the planner — a constant loaded by
			// reference, or a caller-supplied input. Mutating those would
			// corrupt shared state; dropping the destination sends the
			// kernel down its pure allocate-and-copy path instead.
			out = nil
			outObj = nil
		}
	}
	var start time.Time
	timing := vm.prof != nil && vm.prof.Timing
	if timing {
		start = time.Now()
	}
	res, err := kernel(args, out)
	// Drop the staged argument references immediately: the scratch backing
	// array must not pin the previous call's tensors past their frame.
	for i := range args {
		args[i] = nil
	}
	if err != nil {
		return fmt.Errorf("vm: kernel %s: %w", vm.exe.KernelNames[in.Imm], err)
	}
	if timing {
		d := time.Since(start)
		vm.prof.KernelTime += d
		vm.prof.KernelTimes[vm.exe.KernelNames[in.Imm]] += d
		// Per-kernel name counts ride along with timing; the cheap
		// counts-only mode uses Counts[OpInvokePacked] instead.
		vm.prof.KernelCounts[vm.exe.KernelNames[in.Imm]]++
	}
	if vm.sink != nil && idx == vm.sinkKernel {
		// stream.emit under an attached sink: deliver a deep copy — the
		// live result may sit in a pooled buffer the loop recycles — and
		// let a sink error cancel the producing program.
		if err := vm.sink(res.Clone()); err != nil {
			return fmt.Errorf("vm: stream sink: %w", err)
		}
	}
	if res == out && outObj != nil {
		// Destination-passing hit: the kernel wrote the planned buffer, so
		// the result register can share the buffer's object wholesale.
		// Objects are immutable after construction (§5.2's copy-on-write
		// discipline), making the alias safe.
		fr.regs[in.Dst] = outObj
		return nil
	}
	var backing *Storage
	if outObj != nil {
		backing = outObj.Backing
	}
	fr.regs[in.Dst] = &TensorObj{T: res, Device: dev, Backing: backing}
	return nil
}

// releaseFrame returns every storage in the frame's registers to the pool
// unless it backs (part of) the escaping return value.
func (vm *VM) releaseFrame(fr *frame, ret Object) {
	if vm.pool == nil {
		return
	}
	keep := vm.keepScratch
	clear(keep)
	collectStorages(ret, keep)
	for _, o := range fr.regs {
		switch v := o.(type) {
		case *Storage:
			if !keep[v] {
				vm.pool.release(v)
				keep[v] = true // avoid double release via aliased registers
			}
		}
	}
	// Storages acquired by this frame whose registers were since overwritten
	// (loop-carried buffers threaded through parameters, then replaced) are
	// reachable only through the alloc list.
	for i, st := range fr.allocs {
		if !keep[st] {
			vm.pool.release(st)
			keep[st] = true
		}
		fr.allocs[i] = nil
	}
	fr.allocs = fr.allocs[:0]
}

// recycleLoopFrame runs at a compiled loop's back edge: every storage the
// frame has acquired that is not reachable from the next iteration's
// parameter registers goes back to the pool, giving tail-call loops the
// same steady-state allocation profile OpRet gives call-per-iteration
// recursion. Non-parameter registers are cleared so a stale object can
// neither resurrect a released storage in a later scan nor dangle into the
// next iteration.
func (vm *VM) recycleLoopFrame(fr *frame) {
	np := vm.exe.Funcs[fr.fn].NumParams
	if vm.pool != nil && len(fr.allocs) > 0 {
		keep := vm.keepScratch
		clear(keep)
		for _, o := range fr.regs[:np] {
			collectStorages(o, keep)
		}
		live := fr.allocs[:0]
		for _, st := range fr.allocs {
			if keep[st] {
				live = append(live, st)
			} else {
				vm.pool.release(st)
			}
		}
		for i := len(live); i < len(fr.allocs); i++ {
			fr.allocs[i] = nil
		}
		fr.allocs = live
	}
	for i := np; i < len(fr.regs); i++ {
		fr.regs[i] = nil
	}
}

// collectStorages walks an object graph recording every storage that backs
// reachable tensor data.
func collectStorages(o Object, set map[*Storage]bool) {
	switch v := o.(type) {
	case *TensorObj:
		if v.Backing != nil {
			set[v.Backing] = true
		}
	case *Storage:
		set[v] = true
	case *ADT:
		for _, f := range v.Fields {
			collectStorages(f, set)
		}
	case *Closure:
		for _, f := range v.Free {
			collectStorages(f, set)
		}
	}
}

func (vm *VM) execAllocStorage(fr *frame, in Instruction) error {
	size := int(in.Imm)
	if in.A >= 0 {
		// Dynamic size: the register holds the output shape computed by a
		// shape function; the element size comes from the dtype payload.
		shObj, err := asTensor(fr.regs[in.A])
		if err != nil {
			return err
		}
		shape, err := shObj.T.ToShape()
		if err != nil {
			return err
		}
		size = shape.NumElements() * tensor.DType(in.DType).Size()
	}
	dev := ir.Device{Type: ir.DeviceType(in.Device), ID: in.DeviceID}
	if dev.IsUnknown() {
		dev = ir.CPU(0)
	}
	var st *Storage
	reused := false
	if vm.pool != nil {
		st, reused = vm.pool.acquire(size, dev)
	}
	if st == nil {
		st = &Storage{SizeBytes: size, Device: dev}
	}
	if vm.pool != nil {
		// Track the acquisition so loop back edges (and frame exit) can
		// release it without a register still pointing at it.
		fr.allocs = append(fr.allocs, st)
	}
	if vm.prof != nil {
		vm.prof.AllocBytes += int64(size)
		if reused {
			vm.prof.AllocReuses++
		} else {
			vm.prof.AllocFresh++
		}
	}
	fr.regs[in.Dst] = st
	return nil
}

// storagePool is the runtime free list that serves dynamic allocations whose
// sizes are unknown at compile time: storages are binned by {device,
// power-of-two size class} and handed back out on later requests, cutting
// both allocation count and latency (§6.3). Indexing on the device makes
// acquire O(1) — a LIFO pop — where a class-only index had to scan past
// storages parked on other devices.
type storagePool struct {
	classes map[poolKey][]*Storage
	// shared, when attached, is the cross-VM tier: local misses draw from
	// it and local overflow donates to it, so buffer memory migrates to
	// whichever VM (of whichever program) is hot instead of being dropped.
	shared *SharedStoragePool
}

// poolKey bins free storages by device and size class.
type poolKey struct {
	dev ir.Device
	cls int
}

func newStoragePool() *storagePool { return &storagePool{classes: map[poolKey][]*Storage{}} }

// minSizeClass floors every request at one cache line (64 bytes): a
// zero-byte request (an empty dynamic result, e.g. slicing an upper-bound
// output down to nothing) would otherwise land in class 0 and mint a
// useless 1-byte storage that later same-class requests keep missing.
const minSizeClass = 6

func sizeClass(size int) int {
	if size <= 1<<minSizeClass {
		return minSizeClass
	}
	return bits.Len(uint(size - 1)) // ceil(log2(size))
}

// acquire returns a pooled storage of at least `size` bytes on dev, growing
// the request to its size class so later requests in the same class hit.
// LIFO order hands back the most recently released storage, whose backing
// slices are most likely still cache-resident.
func (p *storagePool) acquire(size int, dev ir.Device) (*Storage, bool) {
	key := poolKey{dev: dev, cls: sizeClass(size)}
	if list := p.classes[key]; len(list) > 0 {
		st := list[len(list)-1]
		p.classes[key] = list[:len(list)-1]
		return st, true
	}
	if p.shared != nil {
		if st, ok := p.shared.acquire(size, dev); ok {
			return st, true
		}
	}
	// Allocate at the class ceiling so the storage is maximally reusable.
	return &Storage{SizeBytes: 1 << key.cls, Device: dev}, false
}

// release returns a storage to the pool; the VM calls it when a kill
// instruction (lowered to storage release) frees a buffer.
func (p *storagePool) release(st *Storage) {
	key := poolKey{dev: st.Device, cls: sizeClass(st.SizeBytes)}
	if len(p.classes[key]) < 64 { // bound pool growth
		p.classes[key] = append(p.classes[key], st)
		return
	}
	if p.shared != nil {
		p.shared.donate(st) // overflow migrates instead of dying
	}
}

// ReleaseStorage returns a storage object to the VM's pool. The compiler
// lowers memory.kill to a Move of the storage into a dead register followed
// by this runtime hook via a packed call; exposing it directly keeps the
// instruction count at the paper's 20.
func (vm *VM) ReleaseStorage(o Object) {
	if vm.pool == nil {
		return
	}
	if st, ok := o.(*Storage); ok {
		vm.pool.release(st)
	}
}
