package vm

import (
	"fmt"
	"math/bits"
	"time"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// VM is an interpreter instance over a loaded executable. "When execution
// begins, the interpreter runs a dispatch loop which checks the op-code and
// executes the appropriate logic, then repeats" (§5.2). A VM is not safe for
// concurrent use; create one per goroutine (they share the executable).
type VM struct {
	exe  *Executable
	prof *Profiler
	pool *storagePool
	// maxDepth bounds recursion to catch runaway programs.
	maxDepth int
}

// New creates a VM over exe with the runtime storage pool enabled.
func New(exe *Executable) *VM {
	return &VM{exe: exe, pool: newStoragePool(), maxDepth: 1 << 20}
}

// SetProfiler attaches (or detaches, with nil) a profiler.
func (vm *VM) SetProfiler(p *Profiler) { vm.prof = p }

// DisablePool turns off runtime storage reuse (for the memory-planning
// ablation: every AllocStorage then hits the Go allocator).
func (vm *VM) DisablePool() { vm.pool = nil }

// Invoke runs the named function on args and returns its result.
func (vm *VM) Invoke(name string, args ...Object) (Object, error) {
	idx, err := vm.exe.EntryFunc(name)
	if err != nil {
		return nil, err
	}
	return vm.run(idx, args)
}

// InvokeTensors is a convenience wrapper: tensors in, tensor out.
func (vm *VM) InvokeTensors(name string, args ...*tensor.Tensor) (*tensor.Tensor, error) {
	objs := make([]Object, len(args))
	for i, a := range args {
		objs[i] = NewTensorObj(a)
	}
	out, err := vm.Invoke(name, objs...)
	if err != nil {
		return nil, err
	}
	to, err := asTensor(out)
	if err != nil {
		return nil, err
	}
	return to.T, nil
}

type frame struct {
	fn   int
	regs []Object
	pc   int
	// dst is the caller register receiving this frame's return value.
	dst Reg
}

func (vm *VM) newFrame(fnIdx int, args []Object) (*frame, error) {
	fn := vm.exe.Funcs[fnIdx]
	if len(args) != fn.NumParams {
		return nil, fmt.Errorf("vm: %s expects %d args, got %d", fn.Name, fn.NumParams, len(args))
	}
	regs := make([]Object, fn.RegCount)
	copy(regs, args)
	return &frame{fn: fnIdx, regs: regs, pc: fn.Start}, nil
}

// run executes the dispatch loop starting from fnIdx.
func (vm *VM) run(fnIdx int, args []Object) (Object, error) {
	f, err := vm.newFrame(fnIdx, args)
	if err != nil {
		return nil, err
	}
	stack := []*frame{f}
	code := vm.exe.Code
	prof := vm.prof

	for {
		fr := stack[len(stack)-1]
		if fr.pc < 0 || fr.pc >= len(code) {
			return nil, fmt.Errorf("vm: pc %d out of range in %s", fr.pc, vm.exe.Funcs[fr.fn].Name)
		}
		in := code[fr.pc]
		if prof != nil {
			prof.Counts[in.Op]++
		}
		var tStart time.Time
		if prof != nil && prof.Timing && in.Op != OpInvokePacked {
			tStart = time.Now()
		}

		switch in.Op {
		case OpMove:
			fr.regs[in.Dst] = fr.regs[in.A]
			fr.pc++

		case OpRet:
			ret := fr.regs[in.A]
			stack = stack[:len(stack)-1]
			// "Objects are reference counted ... kill(tensor) frees a tensor
			// before its reference count becomes zero due to exiting the
			// frame" (§4.3, §5.2): at frame exit, every storage that does
			// not back the escaping return value goes back to the pool.
			vm.releaseFrame(fr, ret)
			if len(stack) == 0 {
				if prof != nil && prof.Timing {
					prof.OtherTime += time.Since(tStart)
				}
				return ret, nil
			}
			caller := stack[len(stack)-1]
			caller.regs[fr.dst] = ret
			// caller.pc already advanced past its Invoke.

		case OpInvoke:
			if len(stack) >= vm.maxDepth {
				return nil, fmt.Errorf("vm: call stack overflow (%d frames)", len(stack))
			}
			callArgs := make([]Object, len(in.Args))
			for i, r := range in.Args {
				callArgs[i] = fr.regs[r]
			}
			nf, err := vm.newFrame(int(in.Imm), callArgs)
			if err != nil {
				return nil, err
			}
			nf.dst = in.Dst
			fr.pc++
			stack = append(stack, nf)

		case OpInvokeClosure:
			if len(stack) >= vm.maxDepth {
				return nil, fmt.Errorf("vm: call stack overflow (%d frames)", len(stack))
			}
			clo, ok := fr.regs[in.A].(*Closure)
			if !ok {
				return nil, fmt.Errorf("vm: InvokeClosure on %T", fr.regs[in.A])
			}
			callArgs := make([]Object, 0, len(clo.Free)+len(in.Args))
			callArgs = append(callArgs, clo.Free...)
			for _, r := range in.Args {
				callArgs = append(callArgs, fr.regs[r])
			}
			nf, err := vm.newFrame(clo.Fn, callArgs)
			if err != nil {
				return nil, err
			}
			nf.dst = in.Dst
			fr.pc++
			stack = append(stack, nf)

		case OpInvokePacked:
			if err := vm.execPacked(fr, in); err != nil {
				return nil, err
			}
			fr.pc++

		case OpAllocStorage:
			if err := vm.execAllocStorage(fr, in); err != nil {
				return nil, err
			}
			fr.pc++

		case OpAllocTensor:
			st, err := asStorage(fr.regs[in.A])
			if err != nil {
				return nil, err
			}
			t, err := st.tensorAt(tensor.DType(in.DType), tensor.Shape(in.Shape), int(in.Imm))
			if err != nil {
				return nil, err
			}
			fr.regs[in.Dst] = &TensorObj{T: t, Device: st.Device, Backing: st}
			fr.pc++

		case OpAllocTensorReg:
			st, err := asStorage(fr.regs[in.A])
			if err != nil {
				return nil, err
			}
			shObj, err := asTensor(fr.regs[in.B])
			if err != nil {
				return nil, err
			}
			shape, err := shObj.T.ToShape()
			if err != nil {
				return nil, err
			}
			t, err := st.tensorAt(tensor.DType(in.DType), shape, 0)
			if err != nil {
				return nil, err
			}
			fr.regs[in.Dst] = &TensorObj{T: t, Device: st.Device, Backing: st}
			fr.pc++

		case OpAllocADT:
			fields := make([]Object, len(in.Args))
			for i, r := range in.Args {
				fields[i] = fr.regs[r]
			}
			fr.regs[in.Dst] = &ADT{Tag: int(in.Imm), Fields: fields}
			fr.pc++

		case OpAllocClosure:
			free := make([]Object, len(in.Args))
			for i, r := range in.Args {
				free[i] = fr.regs[r]
			}
			fr.regs[in.Dst] = &Closure{Fn: int(in.Imm), Free: free}
			fr.pc++

		case OpGetField:
			adt, err := asADT(fr.regs[in.A])
			if err != nil {
				return nil, err
			}
			if int(in.Imm) < 0 || int(in.Imm) >= len(adt.Fields) {
				return nil, fmt.Errorf("vm: GetField index %d out of range (%d fields)", in.Imm, len(adt.Fields))
			}
			fr.regs[in.Dst] = adt.Fields[in.Imm]
			fr.pc++

		case OpGetTag:
			adt, err := asADT(fr.regs[in.A])
			if err != nil {
				return nil, err
			}
			fr.regs[in.Dst] = NewTensorObj(tensor.ScalarI64(int64(adt.Tag)))
			fr.pc++

		case OpIf:
			eq, err := scalarEqual(fr.regs[in.A], fr.regs[in.B])
			if err != nil {
				return nil, err
			}
			if eq {
				fr.pc += in.Off1
			} else {
				fr.pc += in.Off2
			}

		case OpGoto:
			fr.pc += in.Off1

		case OpLoadConst:
			if int(in.Imm) < 0 || int(in.Imm) >= len(vm.exe.Consts) {
				return nil, fmt.Errorf("vm: constant index %d out of range", in.Imm)
			}
			// Constants are shared by reference; kernels never mutate their
			// inputs, which is the copy-on-write discipline of §5.2.
			fr.regs[in.Dst] = &TensorObj{T: vm.exe.Consts[in.Imm], Device: ir.CPU(0)}
			fr.pc++

		case OpLoadConsti:
			fr.regs[in.Dst] = NewTensorObj(tensor.ScalarI64(in.Imm))
			fr.pc++

		case OpDeviceCopy:
			src, err := asTensor(fr.regs[in.A])
			if err != nil {
				return nil, err
			}
			dst := ir.Device{Type: ir.DeviceType(in.Device), ID: in.DeviceID}
			// On the host substrate a cross-device copy is a clone into the
			// destination domain; the platform simulator charges transfer
			// cost by CopyBytes.
			fr.regs[in.Dst] = &TensorObj{T: src.T.Clone(), Device: dst}
			if prof != nil {
				prof.CopyBytes += int64(src.T.NumBytes())
			}
			fr.pc++

		case OpShapeOf:
			t, err := asTensor(fr.regs[in.A])
			if err != nil {
				return nil, err
			}
			// shape_of reads metadata only, so it works "regardless of which
			// device [the tensor] is placed on" (§4.4) and its result lives
			// on the CPU.
			fr.regs[in.Dst] = NewTensorObj(tensor.ShapeTensor(t.T.Shape()))
			fr.pc++

		case OpReshapeTensor:
			t, err := asTensor(fr.regs[in.A])
			if err != nil {
				return nil, err
			}
			shObj, err := asTensor(fr.regs[in.B])
			if err != nil {
				return nil, err
			}
			shape, err := shObj.T.ToShape()
			if err != nil {
				return nil, err
			}
			rt, err := t.T.Reshape(shape...)
			if err != nil {
				return nil, err
			}
			fr.regs[in.Dst] = &TensorObj{T: rt, Device: t.Device}
			fr.pc++

		case OpFatal:
			return nil, fmt.Errorf("vm: Fatal raised in %s at pc %d", vm.exe.Funcs[fr.fn].Name, fr.pc)

		default:
			return nil, fmt.Errorf("vm: unknown opcode %d", in.Op)
		}

		if prof != nil && prof.Timing && in.Op != OpInvokePacked {
			prof.OtherTime += time.Since(tStart)
		}
	}
}

func (vm *VM) execPacked(fr *frame, in Instruction) error {
	kernel, err := vm.exe.Kernel(int(in.Imm))
	if err != nil {
		return err
	}
	hasOut := in.B == 1
	nIn := len(in.Args)
	if hasOut {
		nIn--
	}
	args := make([]*tensor.Tensor, nIn)
	for i := 0; i < nIn; i++ {
		t, err := asTensor(fr.regs[in.Args[i]])
		if err != nil {
			return fmt.Errorf("vm: kernel %s arg %d: %w", vm.exe.KernelNames[in.Imm], i, err)
		}
		args[i] = t.T
	}
	var out *tensor.Tensor
	dev := ir.CPU(0)
	if hasOut {
		to, err := asTensor(fr.regs[in.Args[nIn]])
		if err != nil {
			return fmt.Errorf("vm: kernel %s out buffer: %w", vm.exe.KernelNames[in.Imm], err)
		}
		out = to.T
		dev = to.Device
	}
	var start time.Time
	timing := vm.prof != nil && vm.prof.Timing
	if timing {
		start = time.Now()
	}
	res, err := kernel(args, out)
	if err != nil {
		return fmt.Errorf("vm: kernel %s: %w", vm.exe.KernelNames[in.Imm], err)
	}
	if timing {
		d := time.Since(start)
		vm.prof.KernelTime += d
		vm.prof.KernelTimes[vm.exe.KernelNames[in.Imm]] += d
	}
	if vm.prof != nil && vm.prof.Timing {
		// Per-kernel name counts ride along with timing; the cheap
		// counts-only mode uses Counts[OpInvokePacked] instead.
		vm.prof.KernelCounts[vm.exe.KernelNames[in.Imm]]++
	}
	var backing *Storage
	if hasOut {
		if to, ok := fr.regs[in.Args[nIn]].(*TensorObj); ok {
			backing = to.Backing
		}
	}
	fr.regs[in.Dst] = &TensorObj{T: res, Device: dev, Backing: backing}
	return nil
}

// releaseFrame returns every storage in the frame's registers to the pool
// unless it backs (part of) the escaping return value.
func (vm *VM) releaseFrame(fr *frame, ret Object) {
	if vm.pool == nil {
		return
	}
	keep := map[*Storage]bool{}
	collectStorages(ret, keep)
	for _, o := range fr.regs {
		switch v := o.(type) {
		case *Storage:
			if !keep[v] {
				vm.pool.release(v)
				keep[v] = true // avoid double release via aliased registers
			}
		}
	}
}

// collectStorages walks an object graph recording every storage that backs
// reachable tensor data.
func collectStorages(o Object, set map[*Storage]bool) {
	switch v := o.(type) {
	case *TensorObj:
		if v.Backing != nil {
			set[v.Backing] = true
		}
	case *Storage:
		set[v] = true
	case *ADT:
		for _, f := range v.Fields {
			collectStorages(f, set)
		}
	case *Closure:
		for _, f := range v.Free {
			collectStorages(f, set)
		}
	}
}

func (vm *VM) execAllocStorage(fr *frame, in Instruction) error {
	size := int(in.Imm)
	if in.A >= 0 {
		// Dynamic size: the register holds the output shape computed by a
		// shape function; the element size comes from the dtype payload.
		shObj, err := asTensor(fr.regs[in.A])
		if err != nil {
			return err
		}
		shape, err := shObj.T.ToShape()
		if err != nil {
			return err
		}
		size = shape.NumElements() * tensor.DType(in.DType).Size()
	}
	dev := ir.Device{Type: ir.DeviceType(in.Device), ID: in.DeviceID}
	if dev.IsUnknown() {
		dev = ir.CPU(0)
	}
	var st *Storage
	reused := false
	if vm.pool != nil {
		st, reused = vm.pool.acquire(size, dev)
	}
	if st == nil {
		st = &Storage{SizeBytes: size, Device: dev}
	}
	if vm.prof != nil {
		vm.prof.AllocBytes += int64(size)
		if reused {
			vm.prof.AllocReuses++
		} else {
			vm.prof.AllocFresh++
		}
	}
	fr.regs[in.Dst] = st
	return nil
}

// storagePool is the runtime free list that serves dynamic allocations whose
// sizes are unknown at compile time: storages are binned by power-of-two
// size class and handed back out on later requests, cutting both allocation
// count and latency (§6.3).
type storagePool struct {
	classes map[int][]*Storage
}

func newStoragePool() *storagePool { return &storagePool{classes: map[int][]*Storage{}} }

func sizeClass(size int) int {
	if size <= 0 {
		return 0
	}
	return bits.Len(uint(size - 1)) // ceil(log2(size))
}

// acquire returns a pooled storage of at least `size` bytes on dev, growing
// the request to its size class so later requests in the same class hit.
func (p *storagePool) acquire(size int, dev ir.Device) (*Storage, bool) {
	cls := sizeClass(size)
	list := p.classes[cls]
	for i, st := range list {
		if st.Device == dev {
			p.classes[cls] = append(list[:i], list[i+1:]...)
			return st, true
		}
	}
	// Allocate at the class ceiling so the storage is maximally reusable.
	return &Storage{SizeBytes: 1 << cls, Device: dev}, false
}

// release returns a storage to the pool; the VM calls it when a kill
// instruction (lowered to storage release) frees a buffer.
func (p *storagePool) release(st *Storage) {
	cls := sizeClass(st.SizeBytes)
	if len(p.classes[cls]) < 64 { // bound pool growth
		p.classes[cls] = append(p.classes[cls], st)
	}
}

// ReleaseStorage returns a storage object to the VM's pool. The compiler
// lowers memory.kill to a Move of the storage into a dead register followed
// by this runtime hook via a packed call; exposing it directly keeps the
// instruction count at the paper's 20.
func (vm *VM) ReleaseStorage(o Object) {
	if vm.pool == nil {
		return
	}
	if st, ok := o.(*Storage); ok {
		vm.pool.release(st)
	}
}
