package vm

import (
	"fmt"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// Object is a VM value. The VM "uses a tagged object representation
// reminiscent of those used by programming languages such as Haskell and
// OCaml" (§5.2); here the Go interface is the tag and the concrete types are
// *tensor.Tensor, *Storage, *ADT and *Closure. Objects are passed by
// reference between registers, so register operations are cheap regardless
// of payload size.
type Object interface{ vmObject() }

// TensorObj wraps a tensor value; tensors are the only bulk data the
// instructions interact with.
type TensorObj struct {
	T *tensor.Tensor
	// Device records the logical device holding the data, maintained by
	// DeviceCopy and the allocation instructions for the platform cost
	// model.
	Device ir.Device
	// Backing is the storage this tensor was carved from, nil for tensors
	// that own their memory (constants, kernel-allocated results). The
	// interpreter uses it to decide which storages escape a frame.
	Backing *Storage
}

func (*TensorObj) vmObject() {}

// NewTensorObj wraps t on cpu(0).
func NewTensorObj(t *tensor.Tensor) *TensorObj {
	return &TensorObj{T: t, Device: ir.CPU(0)}
}

func (o *TensorObj) String() string { return o.T.String() }

// Storage is a raw allocation produced by AllocStorage and consumed by
// AllocTensor/AllocTensorReg. It lazily materializes one typed backing
// slice per dtype with capacity for SizeBytes, so tensors allocated from
// the same storage across iterations reuse memory instead of hitting the Go
// allocator — the runtime half of the §4.3 memory-planning story.
type Storage struct {
	SizeBytes int
	Device    ir.Device

	f32 []float32
	f64 []float64
	i32 []int32
	i64 []int64
	b   []bool
}

func (*Storage) vmObject() {}

// tensorAt carves a tensor of the given dtype/shape out of the storage at a
// byte offset. The backing slice for each dtype is allocated once and
// reused by later calls.
func (s *Storage) tensorAt(dt tensor.DType, shape tensor.Shape, offsetBytes int) (*tensor.Tensor, error) {
	n := shape.NumElements()
	need := offsetBytes + n*dt.Size()
	if need > s.SizeBytes {
		return nil, fmt.Errorf("vm: tensor %v %s (%d bytes at offset %d) exceeds storage of %d bytes",
			shape, dt, n*dt.Size(), offsetBytes, s.SizeBytes)
	}
	elemOff := offsetBytes / dt.Size()
	capElems := s.SizeBytes / dt.Size()
	switch dt {
	case tensor.Float32:
		if s.f32 == nil {
			s.f32 = make([]float32, capElems)
		}
		return tensor.FromF32(s.f32[elemOff:elemOff+n], shape...), nil
	case tensor.Float64:
		if s.f64 == nil {
			s.f64 = make([]float64, capElems)
		}
		return tensor.FromF64(s.f64[elemOff:elemOff+n], shape...), nil
	case tensor.Int32:
		if s.i32 == nil {
			s.i32 = make([]int32, capElems)
		}
		return tensor.FromI32(s.i32[elemOff:elemOff+n], shape...), nil
	case tensor.Int64:
		if s.i64 == nil {
			s.i64 = make([]int64, capElems)
		}
		return tensor.FromI64(s.i64[elemOff:elemOff+n], shape...), nil
	case tensor.Bool:
		if s.b == nil {
			s.b = make([]bool, capElems)
		}
		return tensor.FromBool(s.b[elemOff:elemOff+n], shape...), nil
	}
	return nil, fmt.Errorf("vm: unknown dtype %d", dt)
}

// ADT is an algebraic data type value (or a tuple, which uses TupleTag).
// AllocADT builds them; GetField and GetTag take them apart.
type ADT struct {
	Tag    int
	Fields []Object
}

func (*ADT) vmObject() {}

// TupleTag marks ADT objects that represent tuples rather than declared
// constructors.
const TupleTag = -1

// NewTuple builds a tuple object.
func NewTuple(fields ...Object) *ADT { return &ADT{Tag: TupleTag, Fields: fields} }

// Closure pairs a lowered VM function with its captured environment.
type Closure struct {
	Fn   int
	Free []Object
}

func (*Closure) vmObject() {}

// asTensor extracts the tensor from an object, reporting a decoded error
// otherwise. The compiler guarantees these never fire for well-typed
// programs; they guard against executable corruption.
func asTensor(o Object) (*TensorObj, error) {
	t, ok := o.(*TensorObj)
	if !ok {
		return nil, fmt.Errorf("vm: expected tensor object, got %T", o)
	}
	return t, nil
}

func asStorage(o Object) (*Storage, error) {
	s, ok := o.(*Storage)
	if !ok {
		return nil, fmt.Errorf("vm: expected storage object, got %T", o)
	}
	return s, nil
}

func asADT(o Object) (*ADT, error) {
	a, ok := o.(*ADT)
	if !ok {
		return nil, fmt.Errorf("vm: expected ADT object, got %T", o)
	}
	return a, nil
}

// scalarEqual implements the If instruction's test: two scalar tensors are
// equal when their numeric values coincide (bools compare as 0/1).
func scalarEqual(a, b Object) (bool, error) {
	ta, err := asTensor(a)
	if err != nil {
		return false, err
	}
	tb, err := asTensor(b)
	if err != nil {
		return false, err
	}
	if ta.T.NumElements() != 1 || tb.T.NumElements() != 1 {
		return false, fmt.Errorf("vm: If condition requires scalars, got %v and %v", ta.T.Shape(), tb.T.Shape())
	}
	return ta.T.AsF64()[0] == tb.T.AsF64()[0], nil
}
