package vm

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// InstrCategory groups opcodes the way §5.2 describes the interpreter's
// instruction classes.
type InstrCategory int

const (
	// CatRegister covers register-to-register operations (Move, LoadConst*).
	CatRegister InstrCategory = iota
	// CatMemory covers allocation instructions.
	CatMemory
	// CatCall covers Invoke/InvokeClosure/InvokePacked/DeviceCopy/ShapeOf/
	// ReshapeTensor — "the most frequently executed instructions".
	CatCall
	// CatControl covers Ret/If/Goto and ADT inspection.
	CatControl
)

func (c InstrCategory) String() string {
	switch c {
	case CatRegister:
		return "register"
	case CatMemory:
		return "memory"
	case CatCall:
		return "call"
	case CatControl:
		return "control"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// CategoryOf classifies an opcode.
func CategoryOf(op Opcode) InstrCategory {
	switch op {
	case OpMove, OpLoadConst, OpLoadConsti:
		return CatRegister
	case OpAllocStorage, OpAllocTensor, OpAllocTensorReg, OpAllocADT, OpAllocClosure:
		return CatMemory
	case OpInvoke, OpInvokeClosure, OpInvokePacked, OpDeviceCopy, OpShapeOf, OpReshapeTensor:
		return CatCall
	default:
		return CatControl
	}
}

// Profiler accumulates per-opcode execution counts and, when timing is
// enabled, the wall time spent in kernel invocations versus all other
// instructions — the split Table 4 reports ("kernel latency" vs "others").
type Profiler struct {
	// Counts holds executed-instruction counts per opcode.
	Counts [NumOpcodes]int64
	// KernelTime is the cumulative time inside InvokePacked kernels.
	KernelTime time.Duration
	// OtherTime is the cumulative time in every other instruction.
	OtherTime time.Duration
	// KernelCounts tracks invocations per kernel name.
	KernelCounts map[string]int64
	// KernelTimes tracks cumulative time per kernel name.
	KernelTimes map[string]time.Duration
	// AllocBytes sums bytes requested from AllocStorage.
	AllocBytes int64
	// AllocReuses counts storage requests served by the runtime pool.
	AllocReuses int64
	// AllocFresh counts storage requests that hit the Go allocator.
	AllocFresh int64
	// CopyBytes sums bytes moved by DeviceCopy.
	CopyBytes int64
	// Timing enables wall-clock measurement (counts are always kept).
	Timing bool
}

// NewProfiler creates a profiler with timing enabled.
func NewProfiler() *Profiler {
	return &Profiler{
		KernelCounts: map[string]int64{},
		KernelTimes:  map[string]time.Duration{},
		Timing:       true,
	}
}

// Reset zeroes all accumulators.
func (p *Profiler) Reset() {
	*p = Profiler{
		KernelCounts: map[string]int64{},
		KernelTimes:  map[string]time.Duration{},
		Timing:       p.Timing,
	}
}

// TotalInstrs returns the number of executed instructions.
func (p *Profiler) TotalInstrs() int64 {
	var n int64
	for _, c := range p.Counts {
		n += c
	}
	return n
}

// CategoryCounts aggregates counts by instruction category.
func (p *Profiler) CategoryCounts() map[InstrCategory]int64 {
	out := map[InstrCategory]int64{}
	for op, c := range p.Counts {
		out[CategoryOf(Opcode(op))] += c
	}
	return out
}

// Summary renders a human-readable profile report.
func (p *Profiler) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d (kernel time %v, other time %v)\n",
		p.TotalInstrs(), p.KernelTime, p.OtherTime)
	type row struct {
		name  string
		count int64
	}
	var rows []row
	for op, c := range p.Counts {
		if c > 0 {
			rows = append(rows, row{Opcode(op).String(), c})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-16s %d\n", r.name, r.count)
	}
	if len(p.KernelCounts) > 0 {
		b.WriteString("kernels:\n")
		names := make([]string, 0, len(p.KernelCounts))
		for n := range p.KernelCounts {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return p.KernelTimes[names[i]] > p.KernelTimes[names[j]] })
		for _, n := range names {
			fmt.Fprintf(&b, "  %-40s %6d calls  %v\n", n, p.KernelCounts[n], p.KernelTimes[n])
		}
	}
	fmt.Fprintf(&b, "alloc: %d bytes, %d fresh, %d pooled; copies: %d bytes\n",
		p.AllocBytes, p.AllocFresh, p.AllocReuses, p.CopyBytes)
	return b.String()
}
