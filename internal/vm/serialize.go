package vm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nimble/internal/tensor"
)

// Executable binary format (little endian):
//
//	magic "NMBL", u32 version
//	u32 #funcs { str name, u32 params, u32 regs, u32 start, u32 len }
//	u32 #kernels { str name }
//	u32 #instructions { variable-length instruction records }
//	u32 #consts { tensor records (see internal/tensor serialize) }
//
// Instruction records serialize only the fields their opcode uses, giving
// the "variable-length instruction format due to the inclusion of variable
// sized operands such as data shapes" the paper describes (§5.1).

const (
	magic   = "NMBL"
	version = 1
)

// WriteTo serializes the executable.
func (e *Executable) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if err := e.write(cw); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (e *Executable) write(w io.Writer) error {
	if _, err := w.Write([]byte(magic)); err != nil {
		return err
	}
	if err := writeU32(w, version); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(e.Funcs))); err != nil {
		return err
	}
	for _, f := range e.Funcs {
		if err := writeString(w, f.Name); err != nil {
			return err
		}
		for _, v := range []uint32{uint32(f.NumParams), uint32(f.RegCount), uint32(f.Start), uint32(f.Len)} {
			if err := writeU32(w, v); err != nil {
				return err
			}
		}
	}
	if err := writeU32(w, uint32(len(e.KernelNames))); err != nil {
		return err
	}
	for _, k := range e.KernelNames {
		if err := writeString(w, k); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(e.Code))); err != nil {
		return err
	}
	for _, in := range e.Code {
		if err := writeInstruction(w, in); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(e.Consts))); err != nil {
		return err
	}
	for _, c := range e.Consts {
		if _, err := c.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadExecutable deserializes an executable. Kernels are unlinked; call
// LinkKernels with the platform's kernel registry before running.
func ReadExecutable(r io.Reader) (*Executable, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("vm: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("vm: bad magic %q", head)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("vm: unsupported executable version %d", ver)
	}
	e := NewExecutable()
	nFuncs, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nFuncs > 1<<20 {
		return nil, fmt.Errorf("vm: implausible function count %d", nFuncs)
	}
	for i := 0; i < int(nFuncs); i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var vals [4]uint32
		for j := range vals {
			vals[j], err = readU32(br)
			if err != nil {
				return nil, err
			}
		}
		e.AddFunc(VMFunc{Name: name, NumParams: int(vals[0]), RegCount: int(vals[1]), Start: int(vals[2]), Len: int(vals[3])})
	}
	nKernels, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nKernels > 1<<20 {
		return nil, fmt.Errorf("vm: implausible kernel count %d", nKernels)
	}
	for i := 0; i < int(nKernels); i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		e.KernelNames = append(e.KernelNames, name)
	}
	nCode, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nCode > 1<<24 {
		return nil, fmt.Errorf("vm: implausible instruction count %d", nCode)
	}
	e.Code = make([]Instruction, nCode)
	for i := range e.Code {
		e.Code[i], err = readInstruction(br)
		if err != nil {
			return nil, fmt.Errorf("vm: instruction %d: %w", i, err)
		}
	}
	nConsts, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nConsts > 1<<24 {
		return nil, fmt.Errorf("vm: implausible constant count %d", nConsts)
	}
	for i := 0; i < int(nConsts); i++ {
		t, err := tensor.ReadFrom(br)
		if err != nil {
			return nil, fmt.Errorf("vm: constant %d: %w", i, err)
		}
		e.Consts = append(e.Consts, t)
	}
	return e, nil
}

func writeInstruction(w io.Writer, in Instruction) error {
	// Fixed head: opcode + dst/a/b + imm + offsets + dtype + device.
	head := make([]byte, 1)
	head[0] = byte(in.Op)
	if _, err := w.Write(head); err != nil {
		return err
	}
	for _, v := range []int64{int64(in.Dst), int64(in.A), int64(in.B), in.Imm, int64(in.Off1), int64(in.Off2), int64(in.DType), int64(in.Device), int64(in.DeviceID)} {
		if err := writeI64(w, v); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(in.Args))); err != nil {
		return err
	}
	for _, r := range in.Args {
		if err := writeI64(w, int64(r)); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(in.Shape))); err != nil {
		return err
	}
	for _, d := range in.Shape {
		if err := writeI64(w, int64(d)); err != nil {
			return err
		}
	}
	return nil
}

func readInstruction(r io.Reader) (Instruction, error) {
	var in Instruction
	head := make([]byte, 1)
	if _, err := io.ReadFull(r, head); err != nil {
		return in, err
	}
	if int(head[0]) >= NumOpcodes {
		return in, fmt.Errorf("bad opcode %d", head[0])
	}
	in.Op = Opcode(head[0])
	vals := make([]int64, 9)
	for i := range vals {
		v, err := readI64(r)
		if err != nil {
			return in, err
		}
		vals[i] = v
	}
	in.Dst, in.A, in.B = int(vals[0]), int(vals[1]), int(vals[2])
	in.Imm = vals[3]
	in.Off1, in.Off2 = int(vals[4]), int(vals[5])
	in.DType = uint8(vals[6])
	in.Device = uint8(vals[7])
	in.DeviceID = int(vals[8])
	nArgs, err := readU32(r)
	if err != nil {
		return in, err
	}
	if nArgs > 1<<16 {
		return in, fmt.Errorf("implausible arg count %d", nArgs)
	}
	if nArgs > 0 {
		in.Args = make([]Reg, nArgs)
		for i := range in.Args {
			v, err := readI64(r)
			if err != nil {
				return in, err
			}
			in.Args[i] = int(v)
		}
	}
	nShape, err := readU32(r)
	if err != nil {
		return in, err
	}
	if nShape > 1<<8 {
		return in, fmt.Errorf("implausible shape rank %d", nShape)
	}
	if nShape > 0 {
		in.Shape = make([]int, nShape)
		for i := range in.Shape {
			v, err := readI64(r)
			if err != nil {
				return in, err
			}
			in.Shape[i] = int(v)
		}
	}
	return in, nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeI64(w io.Writer, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	_, err := w.Write(buf[:])
	return err
}

func readI64(r io.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
