package vm

import (
	"sync"
	"sync/atomic"

	"nimble/internal/ir"
)

// SharedStoragePool is a cross-VM free list of storages: many VMs — across
// sessions, pools, and entirely different programs — donate buffers they
// cannot park locally and draw from the common stock before allocating. A
// multi-model server attaches one shared pool to every session of every
// deployed program, so resident buffer memory scales with the concurrent
// working set (how much is actually being computed at once) rather than
// with #models × #sessions: an idle model's buffers circulate into
// whichever model is hot instead of sitting in per-VM free lists.
//
// The shared pool is the slow tier of a two-level design. Each VM keeps its
// unsynchronized per-session storagePool exactly as before (O(1) LIFO, no
// locking on the hot path); the shared pool is consulted only on a local
// miss (acquire) or local overflow (release), so the mutex here is taken a
// small fraction of the time and never on the steady-state path of a
// cache-warm session. All methods are safe for concurrent use.
type SharedStoragePool struct {
	mu      sync.Mutex
	classes map[poolKey][]*Storage
	// perClass bounds each {device, size-class} bin; donations beyond it
	// are dropped for the GC, which bounds resident memory even when many
	// programs drain at once.
	perClass int

	resident atomic.Int64 // bytes parked in the pool right now
	hits     atomic.Int64 // acquires served from the pool
	misses   atomic.Int64 // acquires that fell through to allocation
	donated  atomic.Int64 // storages accepted from VMs
	dropped  atomic.Int64 // donations refused because the class was full
}

// sharedPerClassDefault bounds each shared {device, class} bin. 256 entries
// of the largest common classes is comfortably above any single model's
// per-session working set while keeping worst-case parked memory bounded.
const sharedPerClassDefault = 256

// NewSharedStoragePool builds an empty shared pool.
func NewSharedStoragePool() *SharedStoragePool {
	return &SharedStoragePool{
		classes:  map[poolKey][]*Storage{},
		perClass: sharedPerClassDefault,
	}
}

// acquire hands out a parked storage of the request's size class, or
// (nil, false) when the class is empty. LIFO for the same cache-residency
// reason as the per-VM pool.
func (sp *SharedStoragePool) acquire(size int, dev ir.Device) (*Storage, bool) {
	key := poolKey{dev: dev, cls: sizeClass(size)}
	sp.mu.Lock()
	list := sp.classes[key]
	if n := len(list); n > 0 {
		st := list[n-1]
		list[n-1] = nil
		sp.classes[key] = list[:n-1]
		sp.mu.Unlock()
		sp.resident.Add(-int64(st.SizeBytes))
		sp.hits.Add(1)
		return st, true
	}
	sp.mu.Unlock()
	sp.misses.Add(1)
	return nil, false
}

// donate parks a storage a VM could not keep locally. Returns false (and
// leaves the storage to the GC) when the class is at its bound.
func (sp *SharedStoragePool) donate(st *Storage) bool {
	key := poolKey{dev: st.Device, cls: sizeClass(st.SizeBytes)}
	sp.mu.Lock()
	if len(sp.classes[key]) >= sp.perClass {
		sp.mu.Unlock()
		sp.dropped.Add(1)
		return false
	}
	sp.classes[key] = append(sp.classes[key], st)
	sp.mu.Unlock()
	sp.resident.Add(int64(st.SizeBytes))
	sp.donated.Add(1)
	return true
}

// SharedPoolStats snapshots the shared pool's counters.
type SharedPoolStats struct {
	// ResidentBytes is how much buffer memory is parked (idle) in the pool.
	ResidentBytes int64 `json:"resident_bytes"`
	// Hits counts acquires served from the pool; Misses counts acquires
	// that had to allocate. Hits rising across a model swap is the pool
	// doing its job: the new version is reusing the old one's buffers.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Donated/Dropped count storages VMs offered; Dropped ones exceeded the
	// per-class bound and went to the GC instead.
	Donated int64 `json:"donated"`
	Dropped int64 `json:"dropped"`
}

// Stats snapshots the counters.
func (sp *SharedStoragePool) Stats() SharedPoolStats {
	return SharedPoolStats{
		ResidentBytes: sp.resident.Load(),
		Hits:          sp.hits.Load(),
		Misses:        sp.misses.Load(),
		Donated:       sp.donated.Load(),
		Dropped:       sp.dropped.Load(),
	}
}

// AttachSharedPool connects this VM's storage pool to a shared cross-VM
// tier: local misses draw from it, local overflow donates to it. Like
// SetProfiler it is a configuration mutator and must be called before the
// VM is checked into a session pool; a VM running with storage reuse
// disabled (DisablePool) ignores the attachment
// (vet:panic-ok — construction-phase misuse guard, never on a request path).
func (vm *VM) AttachSharedPool(sp *SharedStoragePool) {
	if vm.pooled {
		panic("vm: AttachSharedPool on a pooled VM; attach before NewPool adopts the session")
	}
	if vm.pool != nil {
		vm.pool.shared = sp
	}
}
