package vm

import (
	"sync"
	"testing"

	"nimble/internal/ir"
)

// TestSharedPoolOverflowMigrates: a per-VM storage pool donates its
// overflow (beyond the 64-per-class local bound) to the shared tier, and a
// second VM's pool — a different "program" as far as storage is concerned —
// serves its local miss from that donation instead of allocating.
func TestSharedPoolOverflowMigrates(t *testing.T) {
	sp := NewSharedStoragePool()
	a := newStoragePool()
	a.shared = sp
	b := newStoragePool()
	b.shared = sp

	// Fill one size class of A past its local bound: the 65th release must
	// migrate to the shared tier, not die.
	const size = 4096
	for i := 0; i < 65; i++ {
		a.release(&Storage{SizeBytes: size, Device: ir.CPU(0)})
	}
	st := sp.Stats()
	if st.Donated != 1 {
		t.Fatalf("Donated = %d after one overflow, want 1", st.Donated)
	}
	if st.ResidentBytes != size {
		t.Fatalf("ResidentBytes = %d, want %d", st.ResidentBytes, size)
	}

	// B has an empty local pool: its acquire must hit the shared storage A
	// overflowed, and the pool must report the reuse.
	got, reused := b.acquire(size, ir.CPU(0))
	if !reused {
		t.Fatal("B's acquire allocated though the shared tier held a storage")
	}
	if got.SizeBytes != size {
		t.Fatalf("B acquired %d bytes, want %d", got.SizeBytes, size)
	}
	st = sp.Stats()
	if st.Hits != 1 || st.ResidentBytes != 0 {
		t.Fatalf("after cross-VM reuse: Hits=%d ResidentBytes=%d, want 1 and 0", st.Hits, st.ResidentBytes)
	}

	// Empty again: the next miss falls through to allocation and counts.
	if _, reused := b.acquire(size, ir.CPU(0)); reused {
		t.Fatal("second acquire reused from an empty shared tier")
	}
	if st := sp.Stats(); st.Misses < 1 {
		t.Fatalf("Misses = %d, want >= 1", st.Misses)
	}
}

// TestSharedPoolClassBound: donations beyond the per-class cap are refused
// (dropped for the GC) so parked memory stays bounded however many program
// versions drain into the pool at once.
func TestSharedPoolClassBound(t *testing.T) {
	sp := NewSharedStoragePool()
	sp.perClass = 4
	accepted := 0
	for i := 0; i < 10; i++ {
		if sp.donate(&Storage{SizeBytes: 128, Device: ir.CPU(0)}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d donations with perClass=4", accepted)
	}
	st := sp.Stats()
	if st.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", st.Dropped)
	}
	if st.ResidentBytes != 4*128 {
		t.Fatalf("ResidentBytes = %d, want %d", st.ResidentBytes, 4*128)
	}
}

// TestSharedPoolConcurrent: donate/acquire from many goroutines; the race
// detector owns the correctness claim, the final accounting owns the
// conservation claim (nothing double-handed, resident never negative).
func TestSharedPoolConcurrent(t *testing.T) {
	sp := NewSharedStoragePool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp.donate(&Storage{SizeBytes: 1024, Device: ir.CPU(0)})
				sp.acquire(1024, ir.CPU(0))
			}
		}()
	}
	wg.Wait()
	st := sp.Stats()
	if st.ResidentBytes < 0 {
		t.Fatalf("negative resident bytes: %d", st.ResidentBytes)
	}
	if st.Hits+st.ResidentBytes/1024 != st.Donated {
		t.Fatalf("conservation violated: donated=%d hits=%d resident=%d",
			st.Donated, st.Hits, st.ResidentBytes)
	}
}

// TestAttachSharedPoolPooledPanics: the attachment is a configuration
// mutator with the same discipline as SetProfiler — after a pool adopts
// the VM it must panic instead of racing the session's owner.
func TestAttachSharedPoolPooledPanics(t *testing.T) {
	m := New(&Executable{})
	m.MarkPooled()
	defer func() {
		if recover() == nil {
			t.Fatal("AttachSharedPool on a pooled VM did not panic")
		}
	}()
	m.AttachSharedPool(NewSharedStoragePool())
}
