package vm

import (
	"context"
	"errors"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// ErrAborted reports a StreamRun abandoned by Abort before it finished.
var ErrAborted = errors.New("vm: stream run aborted")

// StreamRun is a step-resumable streaming invocation: the same execution
// InvokeStreamContext performs, but parked at every compiled-loop back edge
// instead of run to completion. Between steps the run holds no VM-global
// state — only its frame stack, whose parameter registers carry the next
// iteration's arguments and whose alloc lists track the planner-owned
// buffers (the decode KV-cache) threaded through the loop — so one session
// can hold many StreamRuns at once and interleave their Step calls,
// admitting new runs mid-flight and retiring finished ones without
// draining the rest. That is iteration-level continuous batching at the
// VM boundary; internal/serve's Scheduler drives it.
//
// A StreamRun is owned by its VM's goroutine discipline: like every other
// VM entry point, Step/Abort must not race other invocations on the same
// VM. An entry with no compiled loop simply completes in its first Step.
type StreamRun struct {
	vm    *VM
	stack []*frame
	// sink receives each stream.emit tensor during Step, exactly like
	// InvokeStreamContext's sink; sinkKernel caches the kernel index.
	sink       func(*tensor.Tensor) error
	sinkKernel int
	result     Object
	err        error
	finished   bool
}

// BeginStream prepares a step-resumable run of the named entry. No
// bytecode executes yet: the first Step runs the entry up to its first
// loop back edge (or completion). The sink receives a deep copy of every
// stream.emit value, in program order, from inside the Step that produced
// it; a sink error aborts that Step and finishes the run.
func (vm *VM) BeginStream(sink func(*tensor.Tensor) error, name string, args ...Object) (*StreamRun, error) {
	idx, err := vm.exe.EntryFunc(name)
	if err != nil {
		return nil, err
	}
	f, err := vm.newFrame(idx, args)
	if err != nil {
		return nil, err
	}
	r := &StreamRun{vm: vm, stack: []*frame{f}, sink: sink, sinkKernel: -1}
	for i, n := range vm.exe.KernelNames {
		if n == ir.OpStreamEmit {
			r.sinkKernel = i
			break
		}
	}
	return r, nil
}

// Step resumes the run until its next compiled-loop back edge, returning
// done=false with the state parked for the next Step; or until the entry
// returns or fails, returning done=true with Result holding the outcome.
// A ctx cancellation observed before or during the step finishes the run
// with the context's error (further Steps keep returning it). Step is
// idempotent after completion.
func (r *StreamRun) Step(ctx context.Context) (done bool, err error) {
	if r.finished {
		return true, r.err
	}
	if err := ctx.Err(); err != nil {
		r.finish(nil, err)
		return true, r.err
	}
	m := r.vm
	// Re-arm the per-invocation VM state each step: the session may have
	// run other invocations (or other StreamRuns) since the last one.
	m.kernels = m.exe.kernels
	m.sink, m.sinkKernel = r.sink, r.sinkKernel
	stack, yielded, out, err := m.exec(ctx, r.stack, true)
	m.sink, m.sinkKernel = nil, -1
	r.stack = stack
	if yielded {
		return false, nil
	}
	r.finish(out, err)
	return true, r.err
}

// Result returns the entry's final value and error; valid once Step has
// reported done (before that both are zero).
func (r *StreamRun) Result() (Object, error) { return r.result, r.err }

// Finished reports whether the run has completed, failed, or been aborted.
func (r *StreamRun) Finished() bool { return r.finished }

// Abort abandons a parked run: every storage its frames still hold goes
// back to the session's pool and further Steps report ErrAborted.
// Idempotent; a no-op after the run finished on its own.
func (r *StreamRun) Abort() {
	if r.finished {
		return
	}
	r.finish(nil, ErrAborted)
}

// finish seals the outcome and releases whatever the stack still holds. On
// a clean return the stack is already empty (OpRet released each frame);
// on error or abort the parked frames still pin their loop-carried
// buffers, which must go back to the pool before the session serves the
// next request.
func (r *StreamRun) finish(out Object, err error) {
	r.finished = true
	r.result, r.err = out, err
	r.releaseFrames()
}

// releaseFrames returns the parked frames' storages to the VM pool and the
// frames themselves to the recycle list. One seen-set spans the whole
// stack: a storage can be visible from two frames at once (the caller's
// alloc list and the callee's parameter registers), and must be released
// exactly once.
func (r *StreamRun) releaseFrames() {
	m := r.vm
	if m.pool != nil {
		seen := m.keepScratch
		clear(seen)
		for _, fr := range r.stack {
			for _, o := range fr.regs {
				if st, ok := o.(*Storage); ok && !seen[st] {
					seen[st] = true
					m.pool.release(st)
				}
			}
			for _, st := range fr.allocs {
				if !seen[st] {
					seen[st] = true
					m.pool.release(st)
				}
			}
		}
		clear(seen)
	}
	for _, fr := range r.stack {
		m.freeFrame(fr)
	}
	r.stack = nil
}
