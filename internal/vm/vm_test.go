package vm

import (
	"bytes"
	"strings"
	"testing"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// buildExe assembles a single-function executable.
func buildExe(name string, numParams, regCount int, code []Instruction) *Executable {
	e := NewExecutable()
	e.AddFunc(VMFunc{Name: name, NumParams: numParams, RegCount: regCount, Start: 0, Len: len(code)})
	e.Code = code
	return e
}

func TestISAComplete(t *testing.T) {
	// The paper's ISA (Table A.1) has exactly 20 instructions with these
	// names; this test pins the reproduction to it.
	if NumOpcodes != 20 {
		t.Fatalf("ISA has %d opcodes, want 20", NumOpcodes)
	}
	want := []string{
		"Move", "Ret", "Invoke", "InvokeClosure", "InvokePacked",
		"AllocStorage", "AllocTensor", "AllocTensorReg", "AllocADT",
		"AllocClosure", "GetField", "GetTag", "If", "Goto",
		"LoadConst", "LoadConsti", "DeviceCopy", "ShapeOf",
		"ReshapeTensor", "Fatal",
	}
	for i, w := range want {
		if Opcode(i).String() != w {
			t.Errorf("opcode %d = %s, want %s", i, Opcode(i), w)
		}
	}
	if Opcode(99).String() != "Opcode(99)" {
		t.Error("unknown opcode formatting broken")
	}
}

func TestMoveRetLoadConst(t *testing.T) {
	e := buildExe("main", 0, 2, []Instruction{
		{Op: OpLoadConst, Dst: 0, Imm: 0},
		{Op: OpMove, Dst: 1, A: 0},
		{Op: OpRet, A: 1},
	})
	c := tensor.FromF32([]float32{1, 2, 3}, 3)
	e.AddConst(c)
	out, err := New(e).Invoke("main")
	if err != nil {
		t.Fatal(err)
	}
	if !out.(*TensorObj).T.Equal(c) {
		t.Error("const round trip failed")
	}
}

func TestLoadConsti(t *testing.T) {
	e := buildExe("main", 0, 1, []Instruction{
		{Op: OpLoadConsti, Dst: 0, Imm: 42},
		{Op: OpRet, A: 0},
	})
	out, err := New(e).Invoke("main")
	if err != nil {
		t.Fatal(err)
	}
	if out.(*TensorObj).T.I64()[0] != 42 {
		t.Error("immediate load failed")
	}
}

func TestIfAndGoto(t *testing.T) {
	// if (arg == 1) return 100 else return 200
	e := buildExe("main", 1, 4, []Instruction{
		{Op: OpLoadConsti, Dst: 1, Imm: 1},
		{Op: OpIf, A: 0, B: 1, Off1: 1, Off2: 3},
		{Op: OpLoadConsti, Dst: 2, Imm: 100}, // true branch
		{Op: OpGoto, Off1: 2},
		{Op: OpLoadConsti, Dst: 2, Imm: 200}, // false branch
		{Op: OpRet, A: 2},
	})
	vmi := New(e)
	out, err := vmi.Invoke("main", NewTensorObj(tensor.ScalarI64(1)))
	if err != nil {
		t.Fatal(err)
	}
	if out.(*TensorObj).T.I64()[0] != 100 {
		t.Errorf("true branch = %v", out)
	}
	out, err = vmi.Invoke("main", NewTensorObj(tensor.ScalarI64(7)))
	if err != nil {
		t.Fatal(err)
	}
	if out.(*TensorObj).T.I64()[0] != 200 {
		t.Errorf("false branch = %v", out)
	}
	// Bool scalars compare against integer 1.
	out, err = vmi.Invoke("main", NewTensorObj(tensor.ScalarBool(true)))
	if err != nil {
		t.Fatal(err)
	}
	if out.(*TensorObj).T.I64()[0] != 100 {
		t.Error("bool condition broken")
	}
}

func TestInvokeRecursion(t *testing.T) {
	// count(n): if n == 0 return 0 else return count(n-1)  — exercised via a
	// decrement kernel; the recursion covers Invoke + frame management.
	dec := func(args []*tensor.Tensor, _ *tensor.Tensor) (*tensor.Tensor, error) {
		return tensor.ScalarI64(args[0].I64()[0] - 1), nil
	}
	e := NewExecutable()
	kDec := e.AddKernel("dec", dec)
	code := []Instruction{
		{Op: OpLoadConsti, Dst: 1, Imm: 0},
		{Op: OpIf, A: 0, B: 1, Off1: 1, Off2: 2},
		{Op: OpRet, A: 1},
		{Op: OpInvokePacked, Dst: 2, Imm: int64(kDec), B: 0, Args: []Reg{0}},
		{Op: OpInvoke, Dst: 3, Imm: 0, Args: []Reg{2}},
		{Op: OpRet, A: 3},
	}
	e.AddFunc(VMFunc{Name: "count", NumParams: 1, RegCount: 4, Start: 0, Len: len(code)})
	e.Code = code
	out, err := New(e).Invoke("count", NewTensorObj(tensor.ScalarI64(500)))
	if err != nil {
		t.Fatal(err)
	}
	if out.(*TensorObj).T.I64()[0] != 0 {
		t.Errorf("recursion result = %v", out)
	}
}

func TestStackOverflowGuard(t *testing.T) {
	// f() calls itself forever.
	e := buildExe("loop", 0, 1, []Instruction{
		{Op: OpInvoke, Dst: 0, Imm: 0, Args: nil},
		{Op: OpRet, A: 0},
	})
	vmi := New(e)
	vmi.maxDepth = 100
	if _, err := vmi.Invoke("loop"); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("expected stack overflow, got %v", err)
	}
}

func TestInvokePackedWithDest(t *testing.T) {
	add := func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
		av, bv, ov := args[0].F32(), args[1].F32(), out.F32()
		for i := range ov {
			ov[i] = av[i] + bv[i]
		}
		return out, nil
	}
	e := NewExecutable()
	k := e.AddKernel("add", add)
	c0 := e.AddConst(tensor.FromF32([]float32{1, 2}, 2))
	c1 := e.AddConst(tensor.FromF32([]float32{10, 20}, 2))
	code := []Instruction{
		{Op: OpLoadConst, Dst: 0, Imm: int64(c0)},
		{Op: OpLoadConst, Dst: 1, Imm: int64(c1)},
		{Op: OpAllocStorage, Dst: 2, A: -1, Imm: 8, Device: uint8(ir.DevCPU)},
		{Op: OpAllocTensor, Dst: 3, A: 2, Shape: []int{2}, DType: uint8(tensor.Float32)},
		{Op: OpInvokePacked, Dst: 4, Imm: int64(k), B: 1, Args: []Reg{0, 1, 3}},
		{Op: OpRet, A: 4},
	}
	e.AddFunc(VMFunc{Name: "main", NumParams: 0, RegCount: 5, Start: 0, Len: len(code)})
	e.Code = code
	out, err := New(e).Invoke("main")
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*TensorObj).T
	if !got.Equal(tensor.FromF32([]float32{11, 22}, 2)) {
		t.Errorf("packed add = %v", got.F32())
	}
	if out.(*TensorObj).Backing == nil {
		t.Error("result lost its backing storage")
	}
}

func TestAllocTensorRegFromShape(t *testing.T) {
	e := buildExe("main", 1, 4, []Instruction{
		{Op: OpShapeOf, Dst: 1, A: 0},
		{Op: OpAllocStorage, Dst: 2, A: 1, DType: uint8(tensor.Float32), Device: uint8(ir.DevCPU)},
		{Op: OpAllocTensorReg, Dst: 3, A: 2, B: 1, DType: uint8(tensor.Float32)},
		{Op: OpRet, A: 3},
	})
	in := tensor.New(tensor.Float32, 3, 5)
	out, err := New(e).Invoke("main", NewTensorObj(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.(*TensorObj).T.Shape().Equal(tensor.Shape{3, 5}) {
		t.Errorf("dynamic alloc shape = %v", out.(*TensorObj).T.Shape())
	}
}

func TestStorageTooSmall(t *testing.T) {
	e := buildExe("main", 0, 2, []Instruction{
		{Op: OpAllocStorage, Dst: 0, A: -1, Imm: 4, Device: uint8(ir.DevCPU)},
		{Op: OpAllocTensor, Dst: 1, A: 0, Shape: []int{100}, DType: uint8(tensor.Float32)},
		{Op: OpRet, A: 1},
	})
	if _, err := New(e).Invoke("main"); err == nil || !strings.Contains(err.Error(), "exceeds storage") {
		t.Errorf("oversized tensor accepted: %v", err)
	}
}

func TestADTAndMatchPrimitives(t *testing.T) {
	// Build Node(tag=1){a, b}, then read tag and field 1.
	e := buildExe("main", 2, 5, []Instruction{
		{Op: OpAllocADT, Dst: 2, Imm: 1, Args: []Reg{0, 1}},
		{Op: OpGetTag, Dst: 3, A: 2},
		{Op: OpGetField, Dst: 4, A: 2, Imm: 1},
		{Op: OpRet, A: 4},
	})
	a := NewTensorObj(tensor.Scalar(1))
	b := NewTensorObj(tensor.Scalar(2))
	out, err := New(e).Invoke("main", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*TensorObj).T.F32()[0] != 2 {
		t.Errorf("GetField = %v", out)
	}
	// Out-of-range field.
	e2 := buildExe("main", 1, 3, []Instruction{
		{Op: OpAllocADT, Dst: 1, Imm: 0, Args: []Reg{0}},
		{Op: OpGetField, Dst: 2, A: 1, Imm: 5},
		{Op: OpRet, A: 2},
	})
	if _, err := New(e2).Invoke("main", a); err == nil {
		t.Error("out-of-range GetField accepted")
	}
}

func TestClosure(t *testing.T) {
	// helper(captured, x) = captured (returns its first arg)
	// main(x): c = AllocClosure(helper, [x]); InvokeClosure c ()
	e := NewExecutable()
	helper := []Instruction{
		{Op: OpRet, A: 0},
	}
	e.AddFunc(VMFunc{Name: "main", NumParams: 1, RegCount: 3, Start: 0, Len: 3})
	e.AddFunc(VMFunc{Name: "helper", NumParams: 1, RegCount: 1, Start: 3, Len: 1})
	e.Code = append([]Instruction{
		{Op: OpAllocClosure, Dst: 1, Imm: 1, Args: []Reg{0}},
		{Op: OpInvokeClosure, Dst: 2, A: 1, Args: nil},
		{Op: OpRet, A: 2},
	}, helper...)
	in := NewTensorObj(tensor.Scalar(7))
	out, err := New(e).Invoke("main", in)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*TensorObj).T.F32()[0] != 7 {
		t.Errorf("closure capture = %v", out)
	}
}

func TestDeviceCopyAndShapeOps(t *testing.T) {
	e := buildExe("main", 1, 4, []Instruction{
		{Op: OpDeviceCopy, Dst: 1, A: 0, Device: uint8(ir.DevGPU), DeviceID: 0},
		{Op: OpShapeOf, Dst: 2, A: 1},
		{Op: OpReshapeTensor, Dst: 3, A: 1, B: 2},
		{Op: OpRet, A: 3},
	})
	in := tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)
	vmi := New(e)
	prof := NewProfiler()
	vmi.SetProfiler(prof)
	out, err := vmi.Invoke("main", NewTensorObj(in))
	if err != nil {
		t.Fatal(err)
	}
	to := out.(*TensorObj)
	if to.Device.Type != ir.DevGPU {
		t.Errorf("device = %v", to.Device)
	}
	if !to.T.Equal(in) {
		t.Error("copy changed data")
	}
	if prof.CopyBytes != 16 {
		t.Errorf("CopyBytes = %d", prof.CopyBytes)
	}
}

func TestFatal(t *testing.T) {
	e := buildExe("main", 0, 1, []Instruction{{Op: OpFatal}})
	if _, err := New(e).Invoke("main"); err == nil || !strings.Contains(err.Error(), "Fatal") {
		t.Errorf("Fatal not raised: %v", err)
	}
}

func TestUnknownFunction(t *testing.T) {
	e := buildExe("main", 0, 1, []Instruction{{Op: OpFatal}})
	if _, err := New(e).Invoke("missing"); err == nil {
		t.Error("missing function accepted")
	}
}

func TestArityMismatch(t *testing.T) {
	e := buildExe("main", 2, 3, []Instruction{{Op: OpRet, A: 0}})
	if _, err := New(e).Invoke("main", NewTensorObj(tensor.Scalar(1))); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestStoragePoolReuse(t *testing.T) {
	// A function that allocates a buffer and returns a scalar: its storage
	// must return to the pool, so repeated calls reuse it.
	zero := func(_ []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
		return out, nil
	}
	e := NewExecutable()
	k := e.AddKernel("zero", zero)
	code := []Instruction{
		{Op: OpAllocStorage, Dst: 0, A: -1, Imm: 1024, Device: uint8(ir.DevCPU)},
		{Op: OpAllocTensor, Dst: 1, A: 0, Shape: []int{256}, DType: uint8(tensor.Float32)},
		{Op: OpInvokePacked, Dst: 2, Imm: int64(k), B: 1, Args: []Reg{1}},
		{Op: OpLoadConsti, Dst: 3, Imm: 0},
		{Op: OpRet, A: 3},
	}
	e.AddFunc(VMFunc{Name: "main", NumParams: 0, RegCount: 4, Start: 0, Len: len(code)})
	e.Code = code
	vmi := New(e)
	prof := NewProfiler()
	vmi.SetProfiler(prof)
	for i := 0; i < 10; i++ {
		if _, err := vmi.Invoke("main"); err != nil {
			t.Fatal(err)
		}
	}
	if prof.AllocFresh != 1 {
		t.Errorf("AllocFresh = %d, want 1 (pool should serve reruns)", prof.AllocFresh)
	}
	if prof.AllocReuses != 9 {
		t.Errorf("AllocReuses = %d, want 9", prof.AllocReuses)
	}
	// With the pool disabled every run allocates.
	vm2 := New(e)
	vm2.DisablePool()
	prof2 := NewProfiler()
	vm2.SetProfiler(prof2)
	for i := 0; i < 10; i++ {
		if _, err := vm2.Invoke("main"); err != nil {
			t.Fatal(err)
		}
	}
	if prof2.AllocFresh != 10 || prof2.AllocReuses != 0 {
		t.Errorf("no-pool stats = %d fresh, %d reuses", prof2.AllocFresh, prof2.AllocReuses)
	}
}

func TestEscapingStorageNotReused(t *testing.T) {
	// The returned tensor's storage must NOT return to the pool: reusing it
	// would corrupt the caller-visible result.
	fill := func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
		for i := range out.F32() {
			out.F32()[i] = args[0].F32()[0]
		}
		return out, nil
	}
	e := NewExecutable()
	k := e.AddKernel("fill", fill)
	code := []Instruction{
		{Op: OpAllocStorage, Dst: 1, A: -1, Imm: 16, Device: uint8(ir.DevCPU)},
		{Op: OpAllocTensor, Dst: 2, A: 1, Shape: []int{4}, DType: uint8(tensor.Float32)},
		{Op: OpInvokePacked, Dst: 3, Imm: int64(k), B: 1, Args: []Reg{0, 2}},
		{Op: OpRet, A: 3},
	}
	e.AddFunc(VMFunc{Name: "main", NumParams: 1, RegCount: 4, Start: 0, Len: len(code)})
	e.Code = code
	vmi := New(e)
	first, err := vmi.Invoke("main", NewTensorObj(tensor.Scalar(1)))
	if err != nil {
		t.Fatal(err)
	}
	second, err := vmi.Invoke("main", NewTensorObj(tensor.Scalar(2)))
	if err != nil {
		t.Fatal(err)
	}
	f := first.(*TensorObj).T.F32()
	s := second.(*TensorObj).T.F32()
	if f[0] != 1 || s[0] != 2 {
		t.Errorf("escaping storage was clobbered: first=%v second=%v", f, s)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	e := NewExecutable()
	e.AddKernel("add", func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
		return out, nil
	})
	e.AddConst(tensor.FromF32([]float32{1, 2, 3}, 3))
	e.AddConst(tensor.ScalarI64(9))
	code := []Instruction{
		{Op: OpLoadConst, Dst: 0, Imm: 0},
		{Op: OpAllocStorage, Dst: 1, A: -1, Imm: 12, Device: uint8(ir.DevGPU), DeviceID: 1},
		{Op: OpAllocTensor, Dst: 2, A: 1, Shape: []int{3}, DType: uint8(tensor.Float32)},
		{Op: OpInvokePacked, Dst: 3, Imm: 0, B: 1, Args: []Reg{0, 2}},
		{Op: OpIf, A: 3, B: 0, Off1: 1, Off2: 2},
		{Op: OpRet, A: 3},
	}
	e.AddFunc(VMFunc{Name: "main", NumParams: 0, RegCount: 4, Start: 0, Len: len(code)})
	e.AddFunc(VMFunc{Name: "aux", NumParams: 1, RegCount: 2, Start: 5, Len: 1})
	e.Code = code

	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExecutable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Funcs) != 2 || got.Funcs[0].Name != "main" || got.Funcs[1].NumParams != 1 {
		t.Errorf("funcs = %+v", got.Funcs)
	}
	if len(got.Code) != len(code) {
		t.Fatalf("code length = %d", len(got.Code))
	}
	for i := range code {
		a, b := code[i], got.Code[i]
		if a.Op != b.Op || a.Dst != b.Dst || a.A != b.A || a.B != b.B || a.Imm != b.Imm ||
			a.Off1 != b.Off1 || a.Off2 != b.Off2 || a.DType != b.DType ||
			a.Device != b.Device || a.DeviceID != b.DeviceID ||
			len(a.Args) != len(b.Args) || len(a.Shape) != len(b.Shape) {
			t.Errorf("instruction %d mismatch: %v vs %v", i, a, b)
		}
	}
	if len(got.Consts) != 2 || !got.Consts[0].Equal(e.Consts[0]) {
		t.Error("constants corrupted")
	}
	if len(got.KernelNames) != 1 || got.KernelNames[0] != "add" {
		t.Errorf("kernels = %v", got.KernelNames)
	}
	// Kernels are unlinked until LinkKernels.
	if _, err := got.Kernel(0); err == nil {
		t.Error("unlinked kernel usable")
	}
	if err := got.LinkKernels(map[string]PackedFunc{}); err == nil {
		t.Error("missing kernel not reported")
	}
	if err := got.LinkKernels(map[string]PackedFunc{
		"add": func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) { return out, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := got.Kernel(0); err != nil {
		t.Errorf("linked kernel unusable: %v", err)
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	if _, err := ReadExecutable(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	e := buildExe("main", 0, 1, []Instruction{{Op: OpFatal}})
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncations at every prefix must fail, not panic.
	for cut := 1; cut < len(raw); cut += 7 {
		if _, err := ReadExecutable(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupt opcode.
	bad := append([]byte{}, raw...)
	// find the instruction section: opcode byte of the single Fatal is at a
	// known position only through parsing, so corrupt the version instead.
	bad[4] = 99
	if _, err := ReadExecutable(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestProfilerCategoriesAndSummary(t *testing.T) {
	if CategoryOf(OpMove) != CatRegister || CategoryOf(OpAllocADT) != CatMemory ||
		CategoryOf(OpInvokePacked) != CatCall || CategoryOf(OpIf) != CatControl {
		t.Error("category mapping wrong")
	}
	for _, c := range []InstrCategory{CatRegister, CatMemory, CatCall, CatControl} {
		if c.String() == "" {
			t.Error("empty category name")
		}
	}
	p := NewProfiler()
	p.Counts[OpMove] = 3
	p.Counts[OpInvokePacked] = 2
	p.KernelCounts["dense"] = 2
	if p.TotalInstrs() != 5 {
		t.Errorf("TotalInstrs = %d", p.TotalInstrs())
	}
	cc := p.CategoryCounts()
	if cc[CatRegister] != 3 || cc[CatCall] != 2 {
		t.Errorf("CategoryCounts = %v", cc)
	}
	s := p.Summary()
	if !strings.Contains(s, "Move") || !strings.Contains(s, "dense") {
		t.Errorf("Summary missing entries:\n%s", s)
	}
	p.Reset()
	if p.TotalInstrs() != 0 {
		t.Error("Reset failed")
	}
}

func TestDisassemble(t *testing.T) {
	e := buildExe("main", 1, 3, []Instruction{
		{Op: OpMove, Dst: 1, A: 0},
		{Op: OpLoadConsti, Dst: 2, Imm: 5},
		{Op: OpRet, A: 2},
	})
	d := e.Disassemble()
	for _, want := range []string{"func main", "Move r1, r0", "LoadConsti r2, 5", "Ret r2"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
	// Every opcode has a String rendering (exercise all formatting paths).
	for op := 0; op < NumOpcodes; op++ {
		in := Instruction{Op: Opcode(op), Args: []Reg{1}, Shape: []int{2}}
		if in.String() == "" {
			t.Errorf("opcode %d renders empty", op)
		}
	}
}

func TestSizeClass(t *testing.T) {
	// Requests at or below one cache line clamp to the floor class; above
	// it, classes are ceil(log2(size)).
	cases := []struct{ size, cls int }{
		{0, minSizeClass}, {1, minSizeClass}, {2, minSizeClass}, {63, minSizeClass},
		{64, minSizeClass}, {65, 7}, {128, 7}, {129, 8}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := sizeClass(c.size); got != c.cls {
			t.Errorf("sizeClass(%d) = %d, want %d", c.size, got, c.cls)
		}
	}
}

func TestStoragePoolZeroSizeRequest(t *testing.T) {
	p := newStoragePool()
	st, reused := p.acquire(0, ir.CPU(0))
	if reused {
		t.Fatal("empty pool cannot reuse")
	}
	// A zero-byte request must still mint a usable storage at the floor
	// class, not a 1-byte stub.
	if st.SizeBytes != 1<<minSizeClass {
		t.Errorf("zero-size acquire minted %d bytes, want %d", st.SizeBytes, 1<<minSizeClass)
	}
	if _, err := st.tensorAt(tensor.Float32, tensor.Shape{4}, 0); err != nil {
		t.Errorf("floor-class storage cannot host a small tensor: %v", err)
	}
	// Releasing and re-acquiring at any size within the floor class hits.
	p.release(st)
	got, reused := p.acquire(16, ir.CPU(0))
	if !reused || got != st {
		t.Error("floor-class storage not reused for small request")
	}
}

func TestStoragePoolDeviceIndexing(t *testing.T) {
	p := newStoragePool()
	cpu, sim := ir.CPU(0), ir.Device{Type: ir.DevGPU, ID: 0}
	a, _ := p.acquire(1024, cpu)
	b, _ := p.acquire(1024, sim)
	p.release(a)
	p.release(b)
	// Same size class, different devices: each device gets its own bin.
	got, reused := p.acquire(1000, sim)
	if !reused || got != b {
		t.Error("device-keyed pool failed to return the sim-device storage")
	}
	got, reused = p.acquire(1000, cpu)
	if !reused || got != a {
		t.Error("device-keyed pool failed to return the cpu storage")
	}
	if _, reused = p.acquire(1000, cpu); reused {
		t.Error("pool returned a storage it no longer holds")
	}
	// LIFO: the most recently released storage in a bin comes back first.
	c, _ := p.acquire(1024, cpu)
	p.release(a)
	p.release(c)
	if got, _ := p.acquire(1024, cpu); got != c {
		t.Error("pool is not LIFO within a bin")
	}
}

func TestTupleObject(t *testing.T) {
	tup := NewTuple(NewTensorObj(tensor.Scalar(1)), NewTensorObj(tensor.Scalar(2)))
	if tup.Tag != TupleTag || len(tup.Fields) != 2 {
		t.Error("tuple construction broken")
	}
}
