// Package ir is the public model-building vocabulary of Nimble: typed IR
// expressions with let-binding, control flow, tuples, closures, and
// algebraic data types, plus the paper's dynamic extensions — tensor types
// with statically unknown (Any) dimensions. Build a Module with a Builder,
// then hand it to nimble.Compile.
//
// This package is a thin, stable re-export of the compiler's internal IR:
// every type is an alias, so values built here flow directly into the
// toolchain. The wider internal surface (passes, the explicit-allocation
// dialect, operator registration) stays internal.
package ir

import (
	iir "nimble/internal/ir"
	"nimble/internal/tensor"
)

// DimAny is the sentinel extent of a dimension unknown until runtime —
// the paper's special Any dimension.
const DimAny = iir.DimAny

// Core structure: modules, functions, and the let-chain builder.
type (
	// Module is a compilation unit: named functions plus ADT declarations.
	// The function named "main" is the conventional entry point.
	Module = iir.Module
	// Builder accumulates a let-chain, the idiomatic way model front-ends
	// construct IR.
	Builder = iir.Builder
	// Function is a function literal: parameters, body, optional declared
	// return type.
	Function = iir.Function
	// Expr is the interface of all IR expression nodes.
	Expr = iir.Expr
	// Var is a local variable (compared by pointer identity).
	Var = iir.Var
	// GlobalVar names a function in the module (for recursive calls).
	GlobalVar = iir.GlobalVar
	// Constant wraps a tensor literal (weights, biases).
	Constant = iir.Constant
	// Call applies an operator, global function, or constructor.
	Call = iir.Call
	// Let binds a value within a body.
	Let = iir.Let
	// If is two-way control flow on a scalar condition.
	If = iir.If
	// Tuple builds a fixed-arity tuple; TupleGet projects a field.
	Tuple    = iir.Tuple
	TupleGet = iir.TupleGet
	// Match branches on an ADT value's constructor (dynamic control flow).
	Match = iir.Match
	// Clause is one arm of a Match.
	Clause = iir.Clause
	// Pattern matches a constructor and binds its fields.
	Pattern = iir.Pattern
	// Attrs carries operator attributes (axis, stride, ...).
	Attrs = iir.Attrs
)

// Types.
type (
	// Type is the interface of all IR types.
	Type = iir.Type
	// TensorType is an n-dimensional tensor type whose dims may be Any.
	TensorType = iir.TensorType
	// Dim is one dimension: a concrete extent or Any.
	Dim = iir.Dim
	// TupleType / FuncType / ADTType mirror the value forms.
	TupleType = iir.TupleType
	FuncType  = iir.FuncType
	ADTType   = iir.ADTType
	// TypeDef declares an algebraic data type; Constructor is one variant.
	TypeDef     = iir.TypeDef
	Constructor = iir.Constructor
)

// Device identifies an execution device for placement.
type Device = iir.Device

// NewModule creates an empty module.
func NewModule() *Module { return iir.NewModule() }

// NewBuilder creates an empty let-chain builder.
func NewBuilder() *Builder { return iir.NewBuilder() }

// NewVar creates a variable with an optional type annotation.
func NewVar(name string, ann Type) *Var { return iir.NewVar(name, ann) }

// NewFunc builds a function literal; ret may be nil for inferred returns.
func NewFunc(params []*Var, body Expr, ret Type) *Function {
	return iir.NewFunc(params, body, ret)
}

// NewCall applies a callee to arguments; attrs may be nil.
func NewCall(callee Expr, args []Expr, attrs Attrs) *Call {
	return iir.NewCall(callee, args, attrs)
}

// CallOp builds a call to a registered operator by name.
func CallOp(name string, args ...Expr) *Call { return iir.CallOp(name, args...) }

// CallOpAttrs builds a call to a registered operator with attributes.
func CallOpAttrs(name string, attrs Attrs, args ...Expr) *Call {
	return iir.CallOpAttrs(name, attrs, args...)
}

// Const wraps a tensor literal as an IR constant.
func Const(v *tensor.Tensor) *Constant { return iir.Const(v) }

// ConstScalar builds a float32 scalar constant.
func ConstScalar(v float32) *Constant { return iir.ConstScalar(v) }

// ConstScalarI64 builds an int64 scalar constant.
func ConstScalarI64(v int64) *Constant { return iir.ConstScalarI64(v) }

// ConstBool builds a boolean scalar constant.
func ConstBool(v bool) *Constant { return iir.ConstBool(v) }

// TT builds a TensorType from int dims, where DimAny (-1) denotes Any.
func TT(dt tensor.DType, dims ...int) *TensorType { return iir.TT(dt, dims...) }

// ScalarType returns a rank-0 tensor type.
func ScalarType(dt tensor.DType) *TensorType { return iir.ScalarType(dt) }

// StaticDim returns a concrete dimension; AnyDim an unknown one.
func StaticDim(n int) Dim { return iir.StaticDim(n) }
func AnyDim() Dim         { return iir.AnyDim() }

// NewTypeDef declares an ADT and assigns constructor tags.
func NewTypeDef(name string, ctors ...*Constructor) *TypeDef {
	return iir.NewTypeDef(name, ctors...)
}

// NewConstructor creates an unattached constructor for NewTypeDef.
func NewConstructor(name string, fields ...Type) *Constructor {
	return iir.NewConstructor(name, fields...)
}

// VarPat binds a matched field to a variable; CtorPat matches a
// constructor with sub-patterns.
func VarPat(v *Var) *Pattern { return iir.VarPat(v) }
func CtorPat(c *Constructor, sub ...*Pattern) *Pattern {
	return iir.CtorPat(c, sub...)
}

// CPU and GPU name placement targets for nimble.WithTarget.
func CPU(id int) Device { return iir.CPU(id) }
func GPU(id int) Device { return iir.GPU(id) }

// Print renders an expression; PrintModule renders a whole module.
func Print(e Expr) string          { return iir.Print(e) }
func PrintModule(m *Module) string { return iir.PrintModule(m) }

// OpNames lists all registered primitive operators, sorted.
func OpNames() []string { return iir.OpNames() }
