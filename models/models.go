// Package models re-exports Nimble's built-in evaluation models — LSTM
// (dynamic control flow), Tree-LSTM (dynamic data structures), BERT
// (dynamic data shapes), and an MLP head (row-independent serving) — plus
// helpers that build their dynamic inputs as nimble.Values. Each model
// carries an ir.Module ready for nimble.Compile.
package models

import (
	"math/rand"

	"nimble"
	imodels "nimble/internal/models"
	"nimble/internal/tensor"
)

type (
	// LSTM is a stacked LSTM over a cons-list of step tensors.
	LSTM = imodels.LSTM
	// LSTMConfig sizes it (paper default: 300/512).
	LSTMConfig = imodels.LSTMConfig
	// TreeLSTM recurses over a binary Tree ADT.
	TreeLSTM = imodels.TreeLSTM
	// TreeLSTMConfig sizes it.
	TreeLSTMConfig = imodels.TreeLSTMConfig
	// Tree is the host-side tree used to build Tree-LSTM inputs.
	Tree = imodels.Tree
	// BERT is a transformer encoder with a dynamic sequence length.
	BERT = imodels.BERT
	// BERTConfig sizes it.
	BERTConfig = imodels.BERTConfig
	// MLP is a dense feed-forward head over a dynamic batch — the
	// row-independent entry the serving micro-batcher coalesces.
	MLP = imodels.MLP
	// MLPConfig sizes it.
	MLPConfig = imodels.MLPConfig
	// Decoder is an autoregressive decoder-style transformer whose
	// "generate" entries loop token-by-token inside the VM over mutable
	// KV-cache buffers, emitting each sampled token through stream.emit —
	// the model behind Session.InvokeStream / Service.InvokeStream.
	Decoder = imodels.Decoder
	// DecoderConfig sizes it (vocab, width, layers, heads, tokens to
	// generate, sampling temperature and seed).
	DecoderConfig = imodels.DecoderConfig
)

// NewLSTM builds a stacked LSTM; DefaultLSTMConfig matches the paper.
func NewLSTM(cfg LSTMConfig) *LSTM            { return imodels.NewLSTM(cfg) }
func DefaultLSTMConfig(layers int) LSTMConfig { return imodels.DefaultLSTMConfig(layers) }

// NewTreeLSTM builds a binary Tree-LSTM.
func NewTreeLSTM(cfg TreeLSTMConfig) *TreeLSTM { return imodels.NewTreeLSTM(cfg) }
func DefaultTreeLSTMConfig() TreeLSTMConfig    { return imodels.DefaultTreeLSTMConfig() }

// NewBERT builds a dynamic-sequence-length BERT; BERTReduced is the
// evaluation's reduced size, BERTBase the full base configuration.
func NewBERT(cfg BERTConfig) *BERT { return imodels.NewBERT(cfg) }
func BERTReduced() BERTConfig      { return imodels.BERTReduced() }
func BERTBase() BERTConfig         { return imodels.BERTBase() }

// NewMLP builds the serving MLP head.
func NewMLP(cfg MLPConfig) *MLP   { return imodels.NewMLP(cfg) }
func DefaultMLPConfig() MLPConfig { return imodels.DefaultMLPConfig() }

// NewDecoder builds the autoregressive decoder; DefaultDecoderConfig is the
// evaluation size (128 vocab, 64 wide, 2 layers, 32 generated tokens).
func NewDecoder(cfg DecoderConfig) *Decoder  { return imodels.NewDecoder(cfg) }
func DefaultDecoderConfig() DecoderConfig    { return imodels.DefaultDecoderConfig() }

// StartTokenValue wraps a start-token id as the [1]int64 Value the
// decoder's generate entries consume.
func StartTokenValue(id int64) nimble.Value {
	return nimble.TensorValue(imodels.StartToken(id))
}

// RandomTree builds a random binary tree over n leaves.
func RandomTree(rng *rand.Rand, n, inputDim int) *Tree {
	return imodels.RandomTree(rng, n, inputDim)
}

// SequenceValue packs step tensors (each reshaped to [1, input]) into the
// cons-list value an LSTM's main entry consumes, first step at the head.
func SequenceValue(m *LSTM, steps []*tensor.Tensor) nimble.Value {
	v := nimble.ADTValue(m.NilC.Tag)
	for i := len(steps) - 1; i >= 0; i-- {
		v = nimble.ADTValue(m.ConsC.Tag, nimble.TensorValue(steps[i]), v)
	}
	return v
}

// RandomSequenceValue draws a length-n random input sequence for m.
func RandomSequenceValue(m *LSTM, rng *rand.Rand, n int) nimble.Value {
	return SequenceValue(m, m.RandomSteps(rng, n))
}

// TreeValue converts a host tree into the ADT value a Tree-LSTM's main
// entry consumes.
func TreeValue(m *TreeLSTM, t *Tree) nimble.Value {
	if t.Value != nil {
		return nimble.ADTValue(m.LeafC.Tag, nimble.TensorValue(t.Value))
	}
	return nimble.ADTValue(m.NodeC.Tag, TreeValue(m, t.Left), TreeValue(m, t.Right))
}
