// Package nimble is the public front door to the Nimble compiler and VM —
// a Go reproduction of "Nimble: Efficiently Compiling Dynamic Neural
// Networks for Model Inference" (MLSys '21). It unifies the three ways the
// system is consumed behind one small, context-aware API:
//
//	Compile  — lower an IR module (built with nimble/ir) to a frozen Program
//	Session  — single-goroutine execution: Program.NewSession
//	Service  — concurrent serving (session pool + micro-batching):
//	           Program.NewService
//
// and one invocation verb everywhere:
//
//	Invoke(ctx context.Context, entry string, args ...Value) (Value, error)
//
// Arguments and results travel as Values (tensors, ADTs, tuples). Every
// blocking path honors the context: queue waits are abandoned, requests
// are withdrawn from pending micro-batches, and long dynamic executions
// (an LSTM stepping a sequence, a Tree-LSTM recursing) notice
// cancellation at call boundaries. Failures come back as typed errors —
// ErrUnknownEntry, ErrBadArity, ErrCanceled, ErrClosed — matched with
// errors.Is.
//
// Programs are introspectable: Program.Entrypoints reports each entry
// function's name, parameter and result types (including dynamic Any
// dimensions and ADT constructors), and whether the compiler proved it
// row-separable (safe to micro-batch). Generic callers — the HTTP server
// in cmd/nimble-serve, load generators — are built entirely on this
// introspection, with no per-model adapters.
//
// # API stability
//
// This package, nimble/ir, nimble/tensor, and nimble/models are the
// supported surface; everything under internal/ may change at any time.
// The exported surface is pinned by an API-lock test (api_lock_test.go):
// additions are allowed, but changing or removing an existing export
// requires a deliberate golden-file update.
package nimble

import (
	"os"

	"nimble/internal/compiler"
	"nimble/internal/ir"
	"nimble/internal/passes"
	"nimble/internal/typeinfer"
)

// Option customizes compilation. The zero configuration is the full
// pipeline of the paper: fusion, memory planning, storage coalescing,
// symbolic codegen, targeting cpu(0).
type Option func(*compileOptions)

type compileOptions struct {
	c compiler.Options
}

// WithTarget places kernels on the given device (see nimble/ir: CPU, GPU).
func WithTarget(d ir.Device) Option {
	return func(o *compileOptions) { o.c.Target = d }
}

// WithDispatchWidth sets the symbolic dense-dispatch width (1, 2, 4, or 8)
// used by residue-dispatched kernels over Any dimensions.
func WithDispatchWidth(n int) Option {
	return func(o *compileOptions) { o.c.Codegen.Dispatch = n }
}

// WithoutFusion disables operator fusion (ablation).
func WithoutFusion() Option {
	return func(o *compileOptions) { o.c.DisableFusion = true }
}

// WithoutCoalescing disables static storage coalescing (ablation).
func WithoutCoalescing() Option {
	return func(o *compileOptions) { o.c.DisableCoalescing = true }
}

// WithoutMemoryPlanning disables the explicit-allocation transform
// entirely; kernels then allocate their own outputs (ablation).
func WithoutMemoryPlanning() Option {
	return func(o *compileOptions) { o.c.DisableMemoryPlanning = true }
}

// WithVerify runs the static invariant verifier after every compilation
// pass and over the emitted bytecode (check mode): SSA/ANF well-formedness,
// type consistency against the operator relations, control-flow sanity, and
// memory-manifest safety (kill/coalescing/live-range rules). A violated
// invariant fails Compile with a *VerificationError naming the pass
// boundary, the invariant, and the offending binding or instruction.
// Verification is off by default; the debug environment variable
// NIMBLE_VERIFY=1 turns it on globally. See docs/verifier.md for the
// invariant catalog.
func WithVerify() Option {
	return func(o *compileOptions) { o.c.Verify = true }
}

// CompileStats summarizes what the compiler did, for logging and the
// benchmark harness.
type CompileStats struct {
	// Instructions is the executable's total bytecode length.
	Instructions int `json:"instructions"`
	// Kernels is the number of distinct generated kernels.
	Kernels int `json:"kernels"`
	// FusionGroups and FusedOps summarize operator fusion.
	FusionGroups int `json:"fusion_groups"`
	FusedOps     int `json:"fused_ops"`
	// StaticAllocs/DynamicAllocs split memory planning between
	// compile-time-sized and shape-function-driven allocations.
	StaticAllocs  int `json:"static_allocs"`
	DynamicAllocs int `json:"dynamic_allocs"`
	// StoragesBefore/After report static storage coalescing.
	StoragesBefore int `json:"storages_before"`
	StoragesAfter  int `json:"storages_after"`
}

// Compile lowers an IR module through the full Nimble pipeline — type
// inference with Any dimensions, fusion, memory planning, storage
// coalescing, device placement, symbolic codegen — into a frozen Program.
// The module is consumed: passes rewrite it in place, so build a fresh
// module per Compile. Entry signatures (Program.Entrypoints) are captured
// from the module's compile-time types before lowering.
func Compile(mod *ir.Module, opts ...Option) (*Program, error) {
	var o compileOptions
	if os.Getenv("NIMBLE_VERIFY") == "1" {
		o.c.Verify = true
	}
	for _, opt := range opts {
		opt(&o)
	}

	// Infer types up front so signatures are available even for functions
	// without a declared return annotation. (The pass manager re-runs
	// inference as part of the pipeline; inference is idempotent.)
	if err := typeinfer.InferModule(mod); err != nil {
		return nil, err
	}
	entries := map[string]*EntrySignature{}
	var names []string
	for _, name := range mod.FuncNames() {
		fn := mod.Funcs[name]
		sig := &EntrySignature{Name: name}
		seen := map[*ir.TypeDef]bool{}
		for _, p := range fn.Params {
			pt := p.TypeAnn
			if pt == nil {
				pt = p.CheckedType()
			}
			sig.Params = append(sig.Params, infoOrUnknown(pt, seen))
		}
		rt := fn.RetAnn
		if rt == nil {
			rt = fn.Body.CheckedType()
		}
		sig.Result = infoOrUnknown(rt, seen)
		sig.RowSeparable = passes.RowSeparable(fn)
		entries[name] = sig
		names = append(names, name)
	}

	// The executable is NOT frozen here but at first adoption (NewSession,
	// NewService, Save): the window between compile and adoption is where
	// construction-phase decoration — fault-injection wrappers
	// (internal/faults), instrumentation — may rewrap the kernel table.
	// Once any execution context exists the artifact is sealed for good.
	res, err := compiler.Compile(mod, o.c)
	if err != nil {
		return nil, wrapVerify(err)
	}
	return &Program{
		exe:      res.Exe,
		registry: res.Registry,
		entries:  entries,
		names:    names,
		stats: CompileStats{
			Instructions:   res.Stats.Instructions,
			Kernels:        res.Stats.Kernels,
			FusionGroups:   res.Stats.Fusion.Groups,
			FusedOps:       res.Stats.Fusion.OpsFused,
			StaticAllocs:   res.Stats.Alloc.StaticAllocs,
			DynamicAllocs:  res.Stats.Alloc.DynamicAllocs,
			StoragesBefore: res.Stats.Coalesce.Before,
			StoragesAfter:  res.Stats.Coalesce.After,
		},
	}, nil
}

func infoOrUnknown(t ir.Type, seen map[*ir.TypeDef]bool) TypeInfo {
	if t == nil {
		return TypeInfo{Kind: KindUnknownType}
	}
	return typeInfoOf(t, seen)
}
