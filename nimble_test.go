package nimble_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"nimble"
	"nimble/models"
)

// TestEntrypointSignatures pins Program.Entrypoints for the four evaluation
// models: names, parameter/result types (including Any dims and ADT
// constructors), and the row-separability verdict that drives serving.
func TestEntrypointSignatures(t *testing.T) {
	type want struct {
		sig          string
		rowSeparable bool
	}
	cases := []struct {
		model   string
		compile func() (*nimble.Program, error)
		entries map[string]want
	}{
		{
			model: "mlp",
			compile: func() (*nimble.Program, error) {
				return nimble.Compile(models.NewMLP(models.DefaultMLPConfig()).Module)
			},
			entries: map[string]want{
				"main": {"main(Tensor[(Any, 64), float32]) -> Tensor[(Any, 16), float32]", true},
			},
		},
		{
			model: "lstm",
			compile: func() (*nimble.Program, error) {
				return nimble.Compile(models.NewLSTM(models.DefaultLSTMConfig(1)).Module)
			},
			entries: map[string]want{
				"main": {"main(List) -> Tensor[(1, 512), float32]", false},
				"loop": {"loop(List, Tensor[(1, 512), float32], Tensor[(1, 512), float32]) -> Tensor[(1, 512), float32]", false},
			},
		},
		{
			model: "treelstm",
			compile: func() (*nimble.Program, error) {
				return nimble.Compile(models.NewTreeLSTM(models.DefaultTreeLSTMConfig()).Module)
			},
			entries: map[string]want{
				"main": {"main(Tree) -> Tensor[(1, 150), float32]", false},
				"enc":  {"enc(Tree) -> (Tensor[(1, 150), float32], Tensor[(1, 150), float32])", false},
			},
		},
		{
			model: "bert",
			compile: func() (*nimble.Program, error) {
				return nimble.Compile(models.NewBERT(models.BERTReduced()).Module)
			},
			entries: map[string]want{
				"main": {"main(Tensor[(Any), int64]) -> Tensor[(Any, 256), float32]", false},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.model, func(t *testing.T) {
			p, err := tc.compile()
			if err != nil {
				t.Fatal(err)
			}
			sigs := p.Entrypoints()
			if len(sigs) != len(tc.entries) {
				t.Errorf("got %d entrypoints, want %d: %v", len(sigs), len(tc.entries), sigs)
			}
			for _, sig := range sigs {
				w, ok := tc.entries[sig.Name]
				if !ok {
					t.Errorf("unexpected entry %q", sig.Name)
					continue
				}
				if sig.String() != w.sig {
					t.Errorf("signature = %q, want %q", sig.String(), w.sig)
				}
				if sig.RowSeparable != w.rowSeparable {
					t.Errorf("%s RowSeparable = %v, want %v", sig.Name, sig.RowSeparable, w.rowSeparable)
				}
			}
		})
	}
}

// TestEntrypointADTInfo pins the constructor metadata generic callers
// (the HTTP layer's ADT decoding) depend on.
func TestEntrypointADTInfo(t *testing.T) {
	m := models.NewLSTM(models.LSTMConfig{Input: 8, Hidden: 8, Layers: 1, Seed: 1})
	p, err := nimble.Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := p.Entry("main")
	if err != nil {
		t.Fatal(err)
	}
	adt := sig.Params[0].ADT
	if adt == nil || adt.Name != "List" || len(adt.Constructors) != 2 {
		t.Fatalf("List ADT info missing or wrong: %+v", sig.Params[0])
	}
	byName := map[string]nimble.CtorInfo{}
	for _, c := range adt.Constructors {
		byName[c.Name] = c
	}
	if c, ok := byName["Nil"]; !ok || len(c.Fields) != 0 {
		t.Errorf("Nil constructor wrong: %+v", byName)
	}
	cons, ok := byName["Cons"]
	if !ok || len(cons.Fields) != 2 {
		t.Fatalf("Cons constructor wrong: %+v", byName)
	}
	if cons.Fields[0].Kind != nimble.KindTensorType {
		t.Errorf("Cons field 0 = %+v, want tensor", cons.Fields[0])
	}
	// The recursive reference is broken by name, not infinite recursion.
	if cons.Fields[1].Kind != nimble.KindADTType || cons.Fields[1].ADT.Name != "List" ||
		cons.Fields[1].ADT.Constructors != nil {
		t.Errorf("Cons field 1 = %+v, want name-only List reference", cons.Fields[1])
	}
	if c := byName["Cons"]; c.Tag == byName["Nil"].Tag {
		t.Error("constructor tags collide")
	}
}

func TestUnknownEntryAndArity(t *testing.T) {
	m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 1})
	p, err := nimble.Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess := p.NewSession()
	if _, err := sess.Invoke(ctx, "nope"); !errors.Is(err, nimble.ErrUnknownEntry) {
		t.Errorf("unknown entry error = %v, want ErrUnknownEntry", err)
	}
	if _, err := sess.Invoke(ctx, "main"); !errors.Is(err, nimble.ErrBadArity) {
		t.Errorf("zero-arg invoke error = %v, want ErrBadArity", err)
	}
	in := nimble.TensorValue(m.RandomBatch(rand.New(rand.NewSource(1)), 2))
	if _, err := sess.Invoke(ctx, "main", in, in); !errors.Is(err, nimble.ErrBadArity) {
		t.Errorf("two-arg invoke error = %v, want ErrBadArity", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Invoke(ctx, "main", in); !errors.Is(err, nimble.ErrClosed) {
		t.Errorf("closed session error = %v, want ErrClosed", err)
	}

	svc, err := p.NewService(nimble.ServiceConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(ctx, "nope"); !errors.Is(err, nimble.ErrUnknownEntry) {
		t.Errorf("service unknown entry error = %v, want ErrUnknownEntry", err)
	}
	svc.Close()
	if _, err := svc.Invoke(ctx, "main", in); !errors.Is(err, nimble.ErrClosed) {
		t.Errorf("closed service error = %v, want ErrClosed", err)
	}
}

// TestSessionServiceAgree pins the unified verb: the same invocation
// through a Session, a batching Service, and a pool-only Service produces
// identical outputs, and the Service routes the MLP through its batcher.
func TestSessionServiceAgree(t *testing.T) {
	m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 2})
	mkProg := func() *nimble.Program {
		mm := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 2})
		p, err := nimble.Compile(mm.Module)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ctx := context.Background()
	in := nimble.TensorValue(m.RandomBatch(rand.New(rand.NewSource(3)), 3))

	sess := mkProg().NewSession()
	want, err := sess.Invoke(ctx, "main", in)
	if err != nil {
		t.Fatal(err)
	}
	wt, _ := want.Tensor()

	for _, disableBatch := range []bool{false, true} {
		svc, err := mkProg().NewService(nimble.ServiceConfig{Workers: 2, DisableBatching: disableBatch})
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Invoke(ctx, "main", in)
		if err != nil {
			t.Fatal(err)
		}
		gt, _ := got.Tensor()
		if !gt.AllClose(wt, 1e-6, 1e-7) {
			t.Errorf("service (batching=%v) output differs from session output", !disableBatch)
		}
		st := svc.Stats()
		if disableBatch && len(st.Batchers) != 0 {
			t.Errorf("DisableBatching left %d batchers", len(st.Batchers))
		}
		if !disableBatch {
			if len(st.Batchers) != 1 {
				t.Fatalf("batching service has %d batchers, want 1 (row-separable main)", len(st.Batchers))
			}
			if st.Batchers[0].Singles+st.Batchers[0].Coalesced == 0 {
				t.Error("single-tensor call did not route through the batcher")
			}
		}
		svc.Close()
	}
}

// TestSaveLoadRoundTrip pins Program serialization through the public API:
// signatures survive via the linking library and outputs are identical.
func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := models.LSTMConfig{Input: 8, Hidden: 8, Layers: 1, Seed: 4}
	m := models.NewLSTM(cfg)
	p, err := nimble.Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}

	lib, err := nimble.Compile(models.NewLSTM(cfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := nimble.Load(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(loaded.Entrypoints()), len(p.Entrypoints()); got != want {
		t.Fatalf("loaded program has %d entrypoints, want %d", got, want)
	}
	for i, sig := range loaded.Entrypoints() {
		if sig.String() != p.Entrypoints()[i].String() {
			t.Errorf("loaded signature %q != compiled %q", sig, p.Entrypoints()[i])
		}
	}

	ctx := context.Background()
	seq := models.RandomSequenceValue(m, rand.New(rand.NewSource(5)), 6)
	want, err := p.NewSession().Invoke(ctx, "main", seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.NewSession().Invoke(ctx, "main", seq)
	if err != nil {
		t.Fatal(err)
	}
	wt, _ := want.Tensor()
	gt, _ := got.Tensor()
	if !gt.Equal(wt) {
		t.Error("loaded program output differs from compiled program output")
	}

	// Unlinked load: introspectable, not invocable.
	buf.Reset()
	if _, err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	unlinked, err := nimble.Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unlinked.Disassemble() == "" {
		t.Error("unlinked program should disassemble")
	}
	if _, err := unlinked.NewSession().Invoke(ctx, "main", seq); err == nil {
		t.Error("unlinked program invoke should fail")
	}
}

// TestValueRoundTrip pins the Value wrappers: ADT/tuple construction and
// result decomposition through a real invocation (Tree-LSTM's enc returns
// a tuple).
func TestValueRoundTrip(t *testing.T) {
	cfg := models.TreeLSTMConfig{Input: 8, Hidden: 8, Seed: 6}
	m := models.NewTreeLSTM(cfg)
	p, err := nimble.Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	tree := models.RandomTree(rand.New(rand.NewSource(7)), 4, cfg.Input)
	v := models.TreeValue(m, tree)
	if v.Kind() != nimble.KindADT {
		t.Fatalf("tree value kind = %v", v.Kind())
	}
	out, err := p.NewSession().Invoke(context.Background(), "enc", v)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind() != nimble.KindTuple || len(out.Fields()) != 2 {
		t.Fatalf("enc returned %v with %d fields, want 2-tuple", out.Kind(), len(out.Fields()))
	}
	for i, f := range out.Fields() {
		ft, ok := f.Tensor()
		if !ok {
			t.Fatalf("tuple field %d is %v, want tensor", i, f.Kind())
		}
		if ft.Shape()[1] != cfg.Hidden {
			t.Errorf("tuple field %d shape %v", i, ft.Shape())
		}
	}
	// Zero values are rejected, not crashed on.
	if _, err := p.NewSession().Invoke(context.Background(), "main", nimble.Value{}); err == nil {
		t.Error("zero Value accepted")
	}
}

func TestCompileStats(t *testing.T) {
	p, err := nimble.Compile(models.NewMLP(models.DefaultMLPConfig()).Module)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Instructions == 0 || st.Kernels == 0 {
		t.Errorf("empty stats: %+v", st)
	}
	if st.FusionGroups == 0 {
		t.Errorf("MLP should fuse: %+v", st)
	}
}
