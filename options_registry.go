package nimble

import (
	"time"

	"nimble/internal/vm"
)

// RegistryOption configures NewRegistry. The zero configuration shares one
// storage pool across every hosted model, drains replaced versions with a
// 30-second bound, and splits canary traffic from a fixed seed (fully
// deterministic routing for a given deploy/request sequence).
type RegistryOption func(*registryConfig)

type registryConfig struct {
	seed          uint64
	drainBound    time.Duration
	sharedStorage bool
	serveDefaults []ServiceOption
}

// WithRegistrySeed sets the base seed canary-epoch split seeds derive from.
// Two registries with the same seed, deploy sequence, and request sequence
// route identically — the property the canary determinism tests pin down.
func WithRegistrySeed(seed uint64) RegistryOption {
	return func(c *registryConfig) { c.seed = seed }
}

// WithDrainTimeout bounds how long a replaced version may keep serving its
// in-flight requests and open streams after a hot-swap before stragglers
// are cut with ErrClosed (default 30s).
func WithDrainTimeout(d time.Duration) RegistryOption {
	return func(c *registryConfig) { c.drainBound = d }
}

// WithoutSharedStorage gives every deployed version its own per-session
// storage pools with no cross-program tier — full memory isolation between
// models at the cost of a larger resident footprint.
func WithoutSharedStorage() RegistryOption {
	return func(c *registryConfig) { c.sharedStorage = false }
}

// WithServeDefaults sets ServiceOptions applied to every Deploy, before
// any per-deploy WithServeOptions (later options win).
func WithServeDefaults(opts ...ServiceOption) RegistryOption {
	return func(c *registryConfig) { c.serveDefaults = append(c.serveDefaults, opts...) }
}

// DeployOption configures one Registry.Deploy.
type DeployOption func(*deployConfig)

type deployConfig struct {
	canary    int
	serveOpts []ServiceOption
}

// WithCanary deploys the new version as a canary serving pct percent of the
// model's unpinned traffic (1–99) instead of replacing the stable outright.
// The rollout ends with Promote (canary becomes stable) or Rollback (canary
// is dropped); either drains the losing version. Requires an existing
// stable version to split against.
func WithCanary(pct int) DeployOption {
	return func(c *deployConfig) { c.canary = pct }
}

// WithServeOptions sets ServiceOptions for this version's Service, layered
// over the registry's WithServeDefaults.
func WithServeOptions(opts ...ServiceOption) DeployOption {
	return func(c *deployConfig) { c.serveOpts = append(c.serveOpts, opts...) }
}

// WithRouteKey pins the request's canary-split decision to key: within one
// canary epoch, every request carrying the same key routes to the same
// version, so a user session never flaps between weight versions
// mid-rollout. Ignored outside a Registry invoke or when no canary is live.
func WithRouteKey(key string) InvokeOption {
	return func(c *invokeConfig) { c.routeKey = key }
}

// routeKeyOf extracts the route key from an option list without disturbing
// the other fields (the resolved Service re-applies the full list).
func routeKeyOf(opts []InvokeOption) string {
	var c invokeConfig
	for _, o := range opts {
		o(&c)
	}
	return c.routeKey
}

// SharedStorageStats snapshots the registry's cross-program storage tier:
// bytes parked for reuse, hit/miss traffic, and how many donations were
// accepted or dropped at the per-class bound.
type SharedStorageStats = vm.SharedPoolStats
