package nimble

import (
	"time"

	"nimble/internal/vm"
)

// ServiceOption configures Program.Serve. The zero configuration (no
// options) is a sensible production default: GOMAXPROCS sessions,
// iteration-level stream scheduling with an 8-stream window, micro-batching
// for row-separable entries, bounded per-entry admission queues with
// deadline-aware shedding, and a consecutive-failure circuit breaker.
type ServiceOption func(*serviceConfig)

// serviceConfig is the resolved option set. ServiceConfig (deprecated)
// lowers onto the same struct, so both construction paths share one
// builder.
type serviceConfig struct {
	workers          int
	disableBatching  bool
	maxBatch         int
	maxDelay         time.Duration
	maxQueue         int
	requestTimeout   time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	lanes            int
	schedWindow      int
	pinStreams       bool
	// sharedStorage attaches every session to a cross-program storage
	// tier. Set only by the Registry (no public option): sharing buffer
	// memory across services is a property of co-hosting models, not of
	// one service.
	sharedStorage *vm.SharedStoragePool
}

// WithWorkers sets the session-pool size (default GOMAXPROCS).
func WithWorkers(n int) ServiceOption { return func(c *serviceConfig) { c.workers = n } }

// WithMaxQueue bounds each entry's admitted-but-waiting requests; arrivals
// beyond it are shed with ErrOverloaded instead of queuing unboundedly
// (default 4×workers). Negative disables the bound.
func WithMaxQueue(n int) ServiceOption { return func(c *serviceConfig) { c.maxQueue = n } }

// WithRequestTimeout applies a per-request deadline inside Invoke and
// InvokeStream when the caller's context has none (default none). For a
// stream it bounds the whole run, first token to last.
func WithRequestTimeout(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.requestTimeout = d }
}

// WithBreaker tunes each entry's circuit breaker: threshold consecutive
// internal faults open it, cooldown is how long it sheds before probing
// again (defaults 8, 1s). A negative threshold disables the breaker.
func WithBreaker(threshold int, cooldown time.Duration) ServiceOption {
	return func(c *serviceConfig) {
		c.breakerThreshold = threshold
		c.breakerCooldown = cooldown
	}
}

// WithPriorityLanes sets how many priority lanes requests may select with
// WithPriority (default 1 — every request equal). Lane 0 is served first;
// requests asking for a lane past the last one are clamped into it.
func WithPriorityLanes(n int) ServiceOption { return func(c *serviceConfig) { c.lanes = n } }

// WithSchedulerWindow caps how many decode streams one session interleaves
// under the continuous-batching scheduler — the iteration-level batch size
// (default 8).
func WithSchedulerWindow(n int) ServiceOption { return func(c *serviceConfig) { c.schedWindow = n } }

// WithoutBatching turns micro-batching off; every request dispatches
// individually over the pool.
func WithoutBatching() ServiceOption { return func(c *serviceConfig) { c.disableBatching = true } }

// WithBatchWindow tunes the micro-batcher: maxBatch bounds how many
// requests one dispatch coalesces (default 16), maxDelay how long the
// first request waits for company (default 200µs).
func WithBatchWindow(maxBatch int, maxDelay time.Duration) ServiceOption {
	return func(c *serviceConfig) {
		c.maxBatch = maxBatch
		c.maxDelay = maxDelay
	}
}

// WithPinnedStreams restores the pre-scheduler behavior: each stream
// checks out a pooled session and holds it for its whole run. Exists for
// A/B measurement of the continuous-batching scheduler and as an escape
// hatch; expect worse tail latency under concurrent streams.
func WithPinnedStreams() ServiceOption { return func(c *serviceConfig) { c.pinStreams = true } }

// InvokeOption attaches per-request scheduling hints to Service.InvokeOpts
// and InvokeStreamOpts.
type InvokeOption func(*invokeConfig)

type invokeConfig struct {
	lane     int
	budget   time.Duration
	routeKey string
}

// WithPriority assigns the request to priority lane p (0 = most urgent,
// the default; higher lanes yield to lower ones under contention). Lanes
// past the service's WithPriorityLanes count clamp to the last lane.
func WithPriority(p int) InvokeOption { return func(c *invokeConfig) { c.lane = p } }

// WithDeadlineBudget gives the request d from its arrival to finish,
// tightening (never loosening) any deadline the context already carries.
// The admission gate and scheduler shed the request up front when the
// current backlog already makes the budget unmeetable.
func WithDeadlineBudget(d time.Duration) InvokeOption {
	return func(c *invokeConfig) { c.budget = d }
}
