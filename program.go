package nimble

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nimble/internal/verify"
	"nimble/internal/vm"
)

// Program is a frozen compiled model: immutable bytecode, constants
// (weights), kernel table, and the compile-time entry signatures. A
// Program is safe to share — NewSession and NewService both execute over
// the same frozen artifact — and to serialize (Save/Load round-trips the
// platform-independent part; kernels relink from an identically compiled
// Program).
type Program struct {
	exe      *vm.Executable
	registry map[string]vm.PackedFunc
	entries  map[string]*EntrySignature
	names    []string // sorted entry names
	stats    CompileStats
	// unlinked marks a Program loaded without a kernel library (Load with
	// lib == nil): it can be inspected and disassembled but not executed.
	unlinked bool
}

// Entrypoints returns the signature of every entry function, sorted by
// name. For compiled programs the signatures carry full compile-time type
// information (parameter/result types, Any dimensions, ADT constructors,
// row-separability); for programs loaded without a library they degrade to
// name and arity.
func (p *Program) Entrypoints() []EntrySignature {
	out := make([]EntrySignature, 0, len(p.names))
	for _, n := range p.names {
		out = append(out, *p.entries[n])
	}
	return out
}

// Entry returns the signature of one entry function.
func (p *Program) Entry(name string) (EntrySignature, error) {
	sig, ok := p.entries[name]
	if !ok {
		return EntrySignature{}, unknownEntry(name)
	}
	return *sig, nil
}

// Stats reports what the compiler did.
func (p *Program) Stats() CompileStats { return p.stats }

// Verify re-checks the program's executable against the static invariant
// catalog (function-table consistency, register bounds and definedness,
// control-flow sanity, index validity, storage sizing). Compiled and loaded
// programs should always pass; a non-nil result is a *VerificationError
// (errors.Is ErrVerify) and means the artifact is unsafe to execute.
func (p *Program) Verify() error {
	return wrapVerify(verify.Executable(p.exe, "program"))
}

// Disassemble renders the program's bytecode, kernel table, and constant
// pool metadata.
func (p *Program) Disassemble() string {
	var b strings.Builder
	b.WriteString(p.exe.Disassemble())
	fmt.Fprintf(&b, "kernels (%d):\n", len(p.exe.KernelNames))
	for i, k := range p.exe.KernelNames {
		fmt.Fprintf(&b, "  #%-3d %s\n", i, k)
	}
	fmt.Fprintf(&b, "constants: %d\n", len(p.exe.Consts))
	return b.String()
}

// Save writes the program's platform-independent part (bytecode,
// constants, kernel names) to w, returning the byte count. Load restores
// it; kernel implementations relink from an identically compiled Program.
// Saving freezes the executable: the serialized artifact and the live one
// must agree forever after.
func (p *Program) Save(w io.Writer) (int64, error) {
	p.exe.Freeze()
	return p.exe.WriteTo(w)
}

// Load reads a program saved by Save. Kernel implementations are not
// serialized (they are platform-dependent closures), so lib must be a
// Program compiled from the same model, whose kernel registry and entry
// signatures are adopted. With lib == nil the program loads unlinked: it
// can be introspected and disassembled, but invoking it fails.
func Load(r io.Reader, lib *Program) (*Program, error) {
	exe, err := vm.ReadExecutable(r)
	if err != nil {
		return nil, err
	}
	// A serialized executable is untrusted input: verify its function table,
	// register discipline, control flow, and indices before adopting it.
	if err := verify.Executable(exe, "loaded executable"); err != nil {
		return nil, wrapVerify(err)
	}
	p := &Program{exe: exe, entries: map[string]*EntrySignature{}}
	if lib != nil {
		if err := exe.LinkKernels(lib.registry); err != nil {
			return nil, err
		}
		p.registry = lib.registry
	} else {
		p.unlinked = true
	}
	for _, f := range exe.Funcs {
		if isLiftedLambda(f.Name) {
			continue // compiler-lifted closures are not entry points
		}
		if lib != nil {
			if sig, ok := lib.entries[f.Name]; ok {
				p.entries[f.Name] = sig
				p.names = append(p.names, f.Name)
				continue
			}
		}
		// Arity-only signature: the executable does not carry types.
		sig := &EntrySignature{Name: f.Name, Result: TypeInfo{Kind: KindUnknownType}}
		for i := 0; i < f.NumParams; i++ {
			sig.Params = append(sig.Params, TypeInfo{Kind: KindUnknownType})
		}
		p.entries[f.Name] = sig
		p.names = append(p.names, f.Name)
	}
	sort.Strings(p.names)
	exe.Freeze()
	return p, nil
}

// isLiftedLambda matches exactly the names the compiler's closure lifter
// generates ("lambda" + counter), so a user entry that merely starts with
// "lambda" (e.g. "lambda_scorer") survives a Save/Load round-trip.
func isLiftedLambda(name string) bool {
	rest, ok := strings.CutPrefix(name, "lambda")
	if !ok || rest == "" {
		return false
	}
	for _, r := range rest {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// validate checks entry existence, arity, and argument shape/dtype/kind
// against the compiled signature — the preconditions shared by every
// invocation path. A request that fails here (ErrUnknownEntry,
// ErrBadArity, ErrBadInput) is rejected before it can reach a VM.
func (p *Program) validate(entry string, args []Value) (*EntrySignature, error) {
	sig, ok := p.entries[entry]
	if !ok {
		return nil, unknownEntry(entry)
	}
	if len(args) != len(sig.Params) {
		return nil, badArity(sig, len(args))
	}
	if p.unlinked {
		return nil, fmt.Errorf("nimble: program was loaded without a kernel library; pass the compiled Program to Load")
	}
	if err := checkArgs(sig, args); err != nil {
		return nil, err
	}
	return sig, nil
}
