package nimble

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nimble/internal/vm"
)

// Registry hosts many Programs behind one front door with versioned names
// and zero-downtime weight hot-swap. Each model name owns a sequence of
// versions ("v1", "v2", ...); requests address a model as "bert" (the
// routed serving mix), "bert@latest" (the newest live version), or
// "bert@v2" (pinned). Deploying a new version is atomic from the caller's
// view:
//
//  1. the new Program is verified (the static invariant catalog — a bad
//     artifact is rejected before it can serve a single request),
//  2. a standby Service is built over it,
//  3. an atomic epoch pointer flips, so every admission from that instant
//     routes to the new version,
//  4. the old version drains: requests that resolved the old epoch finish
//     on it (a per-version in-flight count covers the resolve-to-admit
//     window; the session pool's waiter-handoff queue drains its own
//     admitted backlog), and only then are its sessions released.
//
// No request ever observes mixed-version state: it runs entirely on the
// version it resolved, and a version is only released once every such
// request has finished.
//
// Deploying WithCanary(pct) keeps the current stable and routes pct% of
// unpinned traffic to the new version — deterministically: a request
// carrying WithRouteKey always routes the same way within one canary epoch,
// and unkeyed traffic is split by an exact round-robin stride. Promote
// makes the canary the new stable (draining the old); Rollback drops the
// canary (draining it) and leaves stable untouched.
//
// All deployed services attach to one shared cross-program storage pool
// (unless WithoutSharedStorage), so resident buffer memory scales with the
// concurrent working set rather than #models × #sessions.
//
// All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex // serializes Deploy/Promote/Rollback/Shutdown
	models sync.Map   // name -> *modelState; read path is lock-free
	names  []string   // deploy order, under mu

	shared        *vm.SharedStoragePool
	serveDefaults []ServiceOption
	seed          uint64
	epochCount    atomic.Uint64 // distinct seeds per canary epoch
	drainBound    time.Duration
	drains        sync.WaitGroup // background drains of replaced versions
	closed        atomic.Bool
}

// NewRegistry builds an empty registry. The default configuration shares
// one storage pool across everything it will host, drains replaced
// versions with a 30s bound, and seeds canary routing deterministically.
func NewRegistry(opts ...RegistryOption) *Registry {
	cfg := registryConfig{seed: 1, drainBound: 30 * time.Second, sharedStorage: true}
	for _, o := range opts {
		o(&cfg)
	}
	r := &Registry{
		serveDefaults: cfg.serveDefaults,
		seed:          cfg.seed,
		drainBound:    cfg.drainBound,
	}
	if cfg.sharedStorage {
		r.shared = vm.NewSharedStoragePool()
	}
	return r
}

// modelState is one name's mutable routing state. The epoch pointer is the
// swap: readers load it once per request and never see a half-updated mix.
type modelState struct {
	name        string
	epoch       atomic.Pointer[modelEpoch]
	nextVersion atomic.Int64
}

// modelEpoch is an immutable snapshot of one name's serving mix: the
// stable version, the canary (nil outside a canary rollout) with its
// percentage and split seed, and the stride counter unkeyed requests are
// split by. Every routing change (deploy, promote, rollback) installs a
// fresh epoch; nothing in a published epoch is ever mutated except the
// counter, which is atomic.
type modelEpoch struct {
	stable  *modelVersion
	canary  *modelVersion
	percent int
	seed    uint64
	counter atomic.Uint64
}

// live lists the epoch's versions, stable first.
func (ep *modelEpoch) live() []*modelVersion {
	if ep == nil {
		return nil
	}
	vs := []*modelVersion{ep.stable}
	if ep.canary != nil {
		vs = append(vs, ep.canary)
	}
	return vs
}

// modelVersion is one deployed Program with its serving runtime. inflight
// counts requests between route() and completion — the window in which the
// request holds the version but may not yet appear in the Service's own
// accounting; drain waits for it to hit zero before shutting the Service
// down, which is what makes the pointer flip invisible to callers.
type modelVersion struct {
	model    string
	version  string
	prog     *Program
	svc      *Service
	inflight atomic.Int64
	retired  atomic.Bool
	deployed time.Time
}

// splitModelRef parses "name", "name@latest", or "name@vN". The empty
// version string means "no pin" (route the serving mix).
func splitModelRef(ref string) (name, version string, err error) {
	name, version, tagged := strings.Cut(ref, "@")
	if name == "" || (tagged && version == "") || strings.Contains(version, "@") {
		return "", "", badModelRef(ref)
	}
	return name, version, nil
}

func badModelRef(ref string) error {
	return fmt.Errorf("%w: malformed model reference %q (want name, name@latest, or name@vN)", ErrBadInput, ref)
}

// state returns the named model's routing state.
func (r *Registry) state(name string) (*modelState, error) {
	if v, ok := r.models.Load(name); ok {
		return v.(*modelState), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
}

// Deploy registers prog as the next version of name and returns its
// version label ("v1", "v2", ...). The program is verified first — a
// Deploy can never put an artifact in the serving path that the static
// checker rejects. Without options the deploy is a full hot-swap: new
// admissions route to the new version the moment Deploy returns, and every
// previously live version of the name drains in the background (bounded by
// the registry's drain timeout) before its sessions are released.
// WithCanary(pct) instead keeps the current stable and routes pct% of
// unpinned traffic to the new version until Promote or Rollback.
func (r *Registry) Deploy(name string, prog *Program, opts ...DeployOption) (string, error) {
	if strings.Contains(name, "@") || name == "" {
		return "", badModelRef(name)
	}
	var cfg deployConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.canary < 0 || cfg.canary > 100 {
		return "", fmt.Errorf("%w: canary percentage %d outside [0,100]", ErrBadInput, cfg.canary)
	}
	if prog == nil || prog.unlinked {
		return "", fmt.Errorf("nimble: registry: deploy %q: program has no linked kernels", name)
	}
	// The PR 6 verifier gates the swap: a deploy that violates the
	// executable invariant catalog is refused outright.
	if err := prog.Verify(); err != nil {
		return "", fmt.Errorf("nimble: registry: deploy %q: %w", name, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return "", fmt.Errorf("nimble: registry: %w", ErrClosed)
	}
	var ms *modelState
	if v, ok := r.models.Load(name); ok {
		ms = v.(*modelState)
	} else {
		ms = &modelState{name: name}
	}
	old := ms.epoch.Load()
	if cfg.canary > 0 && old == nil {
		return "", fmt.Errorf("nimble: registry: deploy %q: canary needs a stable version to split against", name)
	}

	// Build the standby Service before touching any routing state: a
	// failed build must leave the old epoch serving untouched.
	sc := r.serviceConfig(cfg.serveOpts)
	svc, err := prog.buildService(sc)
	if err != nil {
		return "", fmt.Errorf("nimble: registry: deploy %q: %w", name, err)
	}
	nv := &modelVersion{
		model:    name,
		version:  fmt.Sprintf("v%d", ms.nextVersion.Add(1)),
		prog:     prog,
		svc:      svc,
		deployed: time.Now(),
	}

	ep := &modelEpoch{stable: nv}
	var drains []*modelVersion
	if cfg.canary > 0 {
		ep.stable = old.stable
		ep.canary = nv
		ep.percent = cfg.canary
		ep.seed = splitmix64(r.seed ^ (r.epochCount.Add(1) * 0x9e3779b97f4a7c15))
		if old.canary != nil {
			drains = append(drains, old.canary) // replaced mid-rollout
		}
	} else if old != nil {
		drains = append(drains, old.live()...)
	}
	ms.epoch.Store(ep)
	if _, loaded := r.models.LoadOrStore(name, ms); !loaded {
		r.names = append(r.names, name)
	}
	for _, v := range drains {
		r.drainAsync(v)
	}
	return nv.version, nil
}

// Promote makes name's canary the stable version — the rollout succeeded —
// and drains the old stable. Returns the promoted version label.
func (r *Registry) Promote(name string) (string, error) {
	return r.endCanary(name, true)
}

// Rollback drops name's canary — the rollout failed — draining it; the
// stable version keeps serving untouched. Returns the dropped version
// label.
func (r *Registry) Rollback(name string) (string, error) {
	return r.endCanary(name, false)
}

func (r *Registry) endCanary(name string, promote bool) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return "", fmt.Errorf("nimble: registry: %w", ErrClosed)
	}
	ms, err := r.state(name)
	if err != nil {
		return "", err
	}
	old := ms.epoch.Load()
	if old == nil || old.canary == nil {
		return "", fmt.Errorf("nimble: registry: %q: %w", name, ErrNoCanary)
	}
	var ep *modelEpoch
	var drained *modelVersion
	if promote {
		ep = &modelEpoch{stable: old.canary}
		drained = old.stable
	} else {
		ep = &modelEpoch{stable: old.stable}
		drained = old.canary
	}
	ms.epoch.Store(ep)
	r.drainAsync(drained)
	if promote {
		return ep.stable.version, nil
	}
	return drained.version, nil
}

// serviceConfig folds the registry's serve defaults with per-deploy
// overrides and attaches the shared storage tier.
func (r *Registry) serviceConfig(deployOpts []ServiceOption) serviceConfig {
	var sc serviceConfig
	for _, o := range r.serveDefaults {
		o(&sc)
	}
	for _, o := range deployOpts {
		o(&sc)
	}
	sc.sharedStorage = r.shared
	return sc
}

// drainAsync retires a replaced version in the background: new routes stop
// landing on it (the epoch no longer lists it, and the retired flag closes
// the resolve race), in-flight requests and open streams finish, then the
// Service shuts down and the sessions are released. Bounded by the
// registry's drain timeout; stragglers past the bound are cut with
// ErrClosed by Service.Shutdown.
func (r *Registry) drainAsync(v *modelVersion) {
	r.drains.Add(1)
	go func() {
		defer r.drains.Done()
		ctx, cancel := context.WithTimeout(context.Background(), r.drainBound)
		defer cancel()
		r.drainVersion(ctx, v)
	}()
}

// drainVersion is the drain protocol shared by hot-swap and Shutdown. The
// epoch pointer must already have been republished without v (or the
// registry closed) before calling.
func (r *Registry) drainVersion(ctx context.Context, v *modelVersion) {
	if v.retired.Swap(true) {
		// Already retiring (e.g. Shutdown racing a swap drain); the first
		// retirer owns the Service shutdown.
		return
	}
	// Wait out the resolve-to-admit window: a request that loaded the old
	// epoch just before the flip holds an inflight ref until its Invoke (or
	// its whole stream) finishes. Poll — swaps are not a hot path.
	tick := time.NewTicker(100 * time.Microsecond)
	defer tick.Stop()
	for v.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			// Bound expired: Service.Shutdown below cuts the stragglers.
			goto shutdown
		case <-tick.C:
		}
	}
shutdown:
	_ = v.svc.Shutdown(ctx)
}

// route resolves a model reference to the version one request runs on,
// returning a release func that must be called when the request (or its
// stream) finishes. The returned version is guaranteed live: a version
// starts draining only after it is unreachable from the epoch, so the
// retired re-check after the inflight increment closes the race with a
// concurrent swap.
func (r *Registry) route(ref string, key string) (*modelVersion, func(), error) {
	name, version, err := splitModelRef(ref)
	if err != nil {
		return nil, nil, err
	}
	ms, err := r.state(name)
	if err != nil {
		return nil, nil, err
	}
	for {
		ep := ms.epoch.Load()
		if ep == nil {
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
		}
		v := pickVersion(ep, version, key)
		if v == nil {
			return nil, nil, fmt.Errorf("%w: %q has no version %q", ErrUnknownModel, name, version)
		}
		v.inflight.Add(1)
		if v.retired.Load() {
			// Lost the race with a swap: this version left the epoch between
			// our load and the increment. Undo and resolve afresh.
			v.inflight.Add(-1)
			continue
		}
		return v, func() { v.inflight.Add(-1) }, nil
	}
}

// pickVersion selects within one epoch: a pinned version by label, @latest
// as the newest live version (the canary during a rollout), and the
// unpinned form as the canary-weighted serving mix. Returns nil for an
// unknown pin.
func pickVersion(ep *modelEpoch, version, key string) *modelVersion {
	switch version {
	case "":
		if ep.canary != nil && routeCanary(ep, key) {
			return ep.canary
		}
		return ep.stable
	case "latest":
		if ep.canary != nil {
			return ep.canary
		}
		return ep.stable
	case ep.stable.version:
		return ep.stable
	default:
		if ep.canary != nil && ep.canary.version == version {
			return ep.canary
		}
		return nil
	}
}

// routeCanary decides one unpinned request. Keyed requests hash against
// the epoch seed — the same key routes the same way for the epoch's whole
// life, so a user session never flaps between weight versions mid-rollout.
// Unkeyed requests take an exact deterministic stride: of any N consecutive
// arrivals, floor-exactly pct% land on the canary (a Bresenham split, not a
// coin flip), so observed share converges to the configured share as fast
// as arithmetic allows.
func routeCanary(ep *modelEpoch, key string) bool {
	pct := uint64(ep.percent)
	if key != "" {
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		return splitmix64(h.Sum64()^ep.seed)%100 < pct
	}
	// Canary iff floor(((n+1)·pct)/100) > floor((n·pct)/100): of any 100
	// consecutive arrivals exactly pct land on the canary.
	n := ep.counter.Add(1) - 1
	return (n*pct)%100+pct >= 100
}

// splitmix64 is the avalanche mix used to derive per-epoch route bits;
// identical constants to internal/faults' deterministic schedule.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Invoke runs entry on the model the reference resolves to, with full
// Service semantics (validation, admission, quarantine). model is "name",
// "name@latest", or "name@vN".
func (r *Registry) Invoke(ctx context.Context, model, entry string, args ...Value) (Value, error) {
	return r.InvokeOpts(ctx, model, entry, args)
}

// InvokeOpts is Invoke with per-request options. WithRouteKey pins the
// request's canary-split decision for the epoch's life; priority and
// deadline options pass through to the resolved Service.
func (r *Registry) InvokeOpts(ctx context.Context, model, entry string, args []Value, opts ...InvokeOption) (Value, error) {
	if r.closed.Load() {
		return Value{}, fmt.Errorf("nimble: registry: %w", ErrClosed)
	}
	v, release, err := r.route(model, routeKeyOf(opts))
	if err != nil {
		return Value{}, err
	}
	defer release()
	return v.svc.InvokeOpts(ctx, entry, args, opts...)
}

// InvokeStream opens a token stream on the resolved model version, with
// Service.InvokeStream's synchronous-open semantics. The version is held
// for the stream's whole life: a hot-swap concurrent with an open stream
// waits for it (within the drain bound) before the old version's sessions
// are released.
func (r *Registry) InvokeStream(ctx context.Context, model, entry string, args ...Value) (*Stream, error) {
	return r.InvokeStreamOpts(ctx, model, entry, args)
}

// InvokeStreamOpts is InvokeStream with per-request options.
func (r *Registry) InvokeStreamOpts(ctx context.Context, model, entry string, args []Value, opts ...InvokeOption) (*Stream, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("nimble: registry: %w", ErrClosed)
	}
	v, release, err := r.route(model, routeKeyOf(opts))
	if err != nil {
		return nil, err
	}
	st, err := v.svc.InvokeStreamOpts(ctx, entry, args, opts...)
	if err != nil {
		release()
		return nil, err
	}
	// The version ref lives as long as the stream: released strictly after
	// the producer unwound (session back in its pool, in-flight counts
	// decremented), so a drain that sees inflight==0 knows the Service
	// holds no more work for it.
	go func() {
		<-st.done
		release()
	}()
	return st, nil
}

// Program resolves a model reference to the deployed Program serving it
// right now — "name" and "name@latest" follow the same resolution as
// Invoke (without consuming a canary-split slot) — for introspection:
// entry signatures, disassembly, stats.
func (r *Registry) Program(model string) (*Program, error) {
	name, version, err := splitModelRef(model)
	if err != nil {
		return nil, err
	}
	ms, err := r.state(name)
	if err != nil {
		return nil, err
	}
	ep := ms.epoch.Load()
	if ep == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	// Introspection pins nothing: resolve the mix's stable side for the
	// unpinned form (canary and stable share the model family's surface).
	if version == "" {
		version = ep.stable.version
	}
	if v := pickVersion(ep, version, ""); v != nil {
		return v.prog, nil
	}
	return nil, fmt.Errorf("%w: %q has no version %q", ErrUnknownModel, name, version)
}

// VersionState labels a deployed version's role in its model's epoch.
type VersionState string

const (
	// VersionStable serves the non-canary share of unpinned traffic.
	VersionStable VersionState = "stable"
	// VersionCanary serves the configured percentage of unpinned traffic.
	VersionCanary VersionState = "canary"
)

// VersionStatus reports one live version of a model.
type VersionStatus struct {
	Version string       `json:"version"`
	State   VersionState `json:"state"`
	// Percent is the canary's share of unpinned traffic; 0 for stable.
	Percent int `json:"percent,omitempty"`
	// InFlight counts requests and open streams currently holding this
	// version (the resolve-to-completion window).
	InFlight int64     `json:"in_flight"`
	Deployed time.Time `json:"deployed"`
	Stats    ServiceStats
	Health   Health
}

// ModelStatus reports one model name and its live versions, stable first.
type ModelStatus struct {
	Name     string          `json:"name"`
	Versions []VersionStatus `json:"versions"`
}

// Models snapshots every deployed model in deploy order.
func (r *Registry) Models() []ModelStatus {
	r.mu.Lock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	r.mu.Unlock()
	out := make([]ModelStatus, 0, len(names))
	for _, name := range names {
		v, ok := r.models.Load(name)
		if !ok {
			continue
		}
		ms := v.(*modelState)
		ep := ms.epoch.Load()
		st := ModelStatus{Name: name}
		for _, mv := range ep.live() {
			vs := VersionStatus{
				Version:  mv.version,
				State:    VersionStable,
				InFlight: mv.inflight.Load(),
				Deployed: mv.deployed,
				Stats:    mv.svc.Stats(),
				Health:   mv.svc.Health(),
			}
			if mv == ep.canary {
				vs.State = VersionCanary
				vs.Percent = ep.percent
			}
			st.Versions = append(st.Versions, vs)
		}
		out = append(out, st)
	}
	return out
}

// SharedStorageStats snapshots the cross-program storage pool; ok is false
// when the registry was built WithoutSharedStorage.
func (r *Registry) SharedStorageStats() (SharedStorageStats, bool) {
	if r.shared == nil {
		return SharedStorageStats{}, false
	}
	return r.shared.Stats(), true
}

// Shutdown closes the registry gracefully: new Deploys and Invokes fail
// with ErrClosed immediately, every live version of every model drains
// (in-flight requests and open streams get until ctx is done), and any
// background swap drains still running are awaited under the same bound.
// A nil error means everything drained.
func (r *Registry) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.closed.Swap(true) {
		r.mu.Unlock()
		return nil
	}
	var live []*modelVersion
	r.models.Range(func(_, v any) bool {
		live = append(live, v.(*modelState).epoch.Load().live()...)
		return true
	})
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, v := range live {
		wg.Add(1)
		go func(v *modelVersion) {
			defer wg.Done()
			r.drainVersion(ctx, v)
		}(v)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		r.drains.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("nimble: registry: drain window expired: %w", ErrClosed)
	}
}

// Close shuts the registry down with a bounded default drain (5s), like
// Service.Close. Idempotent.
func (r *Registry) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = r.Shutdown(ctx)
}
