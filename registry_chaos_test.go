package nimble

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nimble/internal/faults"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// TestChaosRegistrySwap drives the fault injector through a canary rollout:
// v1's kernels panic, simulate OOM, and stall on a seeded schedule while
// concurrent clients hammer the model and the control plane deploys a clean
// v2 canary and promotes it mid-storm. Run under -race (the registry-smoke
// and chaos Make targets do). The invariants:
//
//   - every request resolves to a typed error or to the per-input reference
//     output — both versions carry the same weights, so a success is
//     correct regardless of which side of the split served it;
//   - once the promotion is visible, no request started after it may see
//     ErrInternal: v1's poisoned and quarantined sessions must be
//     unreachable, not merely improbable;
//   - session pools conserve their size across every program, and the
//     shared storage tier's accounting survives the storm (nothing
//     double-handed, resident never negative);
//   - the registry serves correctly after the faults stop.
func TestChaosRegistrySwap(t *testing.T) {
	seeds := []uint64{5, 23}
	iters := 60
	if os.Getenv("NIMBLE_CHAOS_LONG") != "" {
		seeds = []uint64{2, 5, 13, 23, 77}
		iters = 300
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runRegistrySwapChaos(t, seed, iters)
		})
	}
}

func runRegistrySwapChaos(t *testing.T, seed uint64, iters int) {
	const clients = 16
	const workers = 4
	ctx := context.Background()
	mcfg := models.MLPConfig{In: 12, Hidden: 24, Out: 6, Layers: 2, Seed: 21}

	// Per-input references from a clean session: the contamination oracle.
	clean, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	m := models.NewMLP(mcfg)
	inputs := make([]*tensor.Tensor, clients)
	want := make([]*tensor.Tensor, clients)
	ref := clean.NewSession()
	for i := range inputs {
		inputs[i] = m.RandomBatch(rng, 1+i%4)
		out, err := ref.Invoke(ctx, "main", TensorValue(inputs[i]))
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = out.Tensor()
	}
	ref.Close()

	// v1 gets the faulty kernel table; v2 (deployed mid-storm) is clean.
	faulty, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Config{
		Seed:             seed,
		PanicPer1024:     40,
		AllocFailPer1024: 20,
		SlowPer1024:      60,
		CancelPer1024:    128,
	})
	if err := inj.WrapExecutable(faulty.exe); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(
		WithRegistrySeed(seed),
		WithServeDefaults(
			WithWorkers(workers),
			WithMaxQueue(8),
			WithRequestTimeout(2*time.Second),
			WithBreaker(1000, 10*time.Millisecond), // poison is the subject, keep the gate open
		),
		WithDrainTimeout(30*time.Second),
	)
	defer r.Close()
	if _, err := r.Deploy("mlp", faulty); err != nil {
		t.Fatal(err)
	}

	// promoted flips before any request that must be fault-free starts; a
	// request loads it BEFORE invoking, so an ErrInternal seen with the
	// flag up proves a poisoned v1 session served post-promotion traffic.
	var promoted atomic.Bool
	var ok, internal, internalPost, overloaded, canceled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := TensorValue(inputs[g])
			for i := 0; i < iters; i++ {
				afterPromote := promoted.Load()
				reqCtx := ctx
				cancelFn := context.CancelFunc(func() {})
				if after, doCancel := inj.CancelRequest(3 * time.Millisecond); doCancel {
					reqCtx, cancelFn = context.WithTimeout(reqCtx, after)
				}
				out, err := r.InvokeOpts(reqCtx, "mlp", "main", []Value{in}, WithRouteKey(fmt.Sprintf("client-%d", g)))
				cancelFn()
				switch {
				case err == nil:
					got, isTensor := out.Tensor()
					if !isTensor || !got.AllClose(want[g], 1e-5, 1e-6) {
						t.Errorf("client %d iter %d: success that matches no reference — contamination", g, i)
						return
					}
					ok.Add(1)
				case errors.Is(err, ErrInternal):
					internal.Add(1)
					if afterPromote {
						internalPost.Add(1)
						t.Errorf("client %d iter %d: ErrInternal after promotion — poisoned v1 resurfaced: %v", g, i, err)
						return
					}
				case errors.Is(err, ErrOverloaded):
					overloaded.Add(1)
				case errors.Is(err, ErrCanceled):
					canceled.Add(1)
				case errors.Is(err, ErrClosed):
					t.Errorf("client %d: ErrClosed while registry open", g)
					return
				default:
					t.Errorf("client %d: untyped error escaped the registry: %v", g, err)
					return
				}
			}
		}(g)
	}

	// The control plane, racing the storm: canary the clean build at 50%,
	// let both sides take faults/traffic, then promote. The drain that
	// retires faulty v1 runs while its kernels are still panicking and
	// stalling — exactly the window the swap protocol must survive.
	cleanV2, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := r.Deploy("mlp", cleanV2, WithCanary(50)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := r.Promote("mlp"); err != nil {
		t.Fatal(err)
	}
	promoted.Store(true)
	wg.Wait()

	if internalPost.Load() > 0 {
		t.FailNow()
	}
	if ok.Load() == 0 {
		t.Error("no request ever succeeded — fault rates drowned the signal")
	}

	// Conservation across programs: every live version's pool holds its
	// configured size with nothing checked out, and the shared tier's books
	// balance (each counter non-negative, resident bytes bounded below).
	time.Sleep(20 * time.Millisecond)
	for _, ms := range r.Models() {
		if len(ms.Versions) != 1 || ms.Versions[0].Version != "v2" {
			t.Fatalf("live set after promotion = %+v, want exactly v2", ms.Versions)
		}
		for _, vs := range ms.Versions {
			if vs.Stats.Pool.Workers != workers {
				t.Errorf("%s@%s pool size drifted: %d, want %d", ms.Name, vs.Version, vs.Stats.Pool.Workers, workers)
			}
			if vs.Stats.Pool.InFlight != 0 {
				t.Errorf("%s@%s leaked session checkouts: InFlight = %d", ms.Name, vs.Version, vs.Stats.Pool.InFlight)
			}
		}
	}
	if st, okShared := r.SharedStorageStats(); !okShared {
		t.Error("shared storage tier missing")
	} else if st.ResidentBytes < 0 || st.Hits < 0 || st.Donated < 0 || st.Dropped < 0 {
		t.Errorf("shared tier accounting corrupt after storm: %+v", st)
	}

	// Post-storm: the promoted version serves every input correctly, and no
	// ErrInternal can occur at all — the clean build has no faults to take.
	for g := 0; g < clients; g++ {
		var lastErr error
		for attempt := 0; attempt < 50; attempt++ {
			out, err := r.Invoke(ctx, "mlp", "main", TensorValue(inputs[g]))
			if err != nil {
				if errors.Is(err, ErrInternal) {
					t.Fatalf("post-promotion ErrInternal for input %d: poisoned v1 resurfaced: %v", g, err)
				}
				lastErr = err
				continue
			}
			got, _ := out.Tensor()
			if got == nil || !got.AllClose(want[g], 1e-5, 1e-6) {
				t.Fatalf("post-storm output for input %d wrong", g)
			}
			lastErr = nil
			break
		}
		if lastErr != nil {
			t.Fatalf("registry unusable after chaos (input %d): %v", g, lastErr)
		}
	}
	t.Logf("seed %d: ok=%d internal=%d overloaded=%d canceled=%d injected=%+v",
		seed, ok.Load(), internal.Load(), overloaded.Load(), canceled.Load(), inj.Stats())
}
