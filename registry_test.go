package nimble

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nimble/internal/models"
	"nimble/internal/tensor"
)

// compileMLPProg compiles a small MLP with the given weight seed; two
// seeds are two "weight versions" of the same architecture, with
// distinguishable outputs — the identity oracle the swap tests hang on.
func compileMLPProg(t testing.TB, seed int64) *Program {
	t.Helper()
	p, err := Compile(models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: seed}).Module)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRegistryDeployRoute pins the reference grammar and the routing table:
// auto-incrementing version labels, pinned/latest/unpinned resolution, and
// the typed errors each malformed or missing reference maps to.
func TestRegistryDeployRoute(t *testing.T) {
	r := NewRegistry(WithServeDefaults(WithWorkers(1)))
	defer r.Close()
	ctx := context.Background()

	v, err := r.Deploy("mlp", compileMLPProg(t, 31))
	if err != nil {
		t.Fatal(err)
	}
	if v != "v1" {
		t.Fatalf("first deploy labeled %q, want v1", v)
	}

	m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 31})
	in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(1)), 2))
	for _, ref := range []string{"mlp", "mlp@v1", "mlp@latest"} {
		if _, err := r.Invoke(ctx, ref, "main", in); err != nil {
			t.Errorf("Invoke(%q) = %v", ref, err)
		}
	}

	// Unknown name and unknown pinned version are ErrUnknownModel (a 404:
	// well-formed, absent); malformed references are ErrBadInput (a 400).
	for _, ref := range []string{"nope", "nope@v1", "mlp@v9"} {
		if _, err := r.Invoke(ctx, ref, "main", in); !errors.Is(err, ErrUnknownModel) {
			t.Errorf("Invoke(%q) = %v, want ErrUnknownModel", ref, err)
		}
	}
	for _, ref := range []string{"", "@", "mlp@", "@v1", "mlp@v1@v2"} {
		if _, err := r.Invoke(ctx, ref, "main", in); !errors.Is(err, ErrBadInput) {
			t.Errorf("Invoke(%q) = %v, want ErrBadInput", ref, err)
		}
	}

	// Control-plane error surface.
	if _, err := r.Promote("mlp"); !errors.Is(err, ErrNoCanary) {
		t.Errorf("Promote with no canary = %v, want ErrNoCanary", err)
	}
	if _, err := r.Rollback("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Rollback of unknown model = %v, want ErrUnknownModel", err)
	}
	if _, err := r.Deploy("bad@name", compileMLPProg(t, 31)); !errors.Is(err, ErrBadInput) {
		t.Errorf("Deploy with @ in name = %v, want ErrBadInput", err)
	}
	if _, err := r.Deploy("mlp", compileMLPProg(t, 32), WithCanary(120)); !errors.Is(err, ErrBadInput) {
		t.Errorf("Deploy with canary=120 = %v, want ErrBadInput", err)
	}
	if _, err := r.Deploy("fresh", compileMLPProg(t, 32), WithCanary(10)); err == nil {
		t.Error("canary deploy with no stable version accepted")
	}

	// A plain second deploy is a full swap: v2 serves, and the pinned v1
	// reference goes stale once the drain retires it.
	v, err = r.Deploy("mlp", compileMLPProg(t, 32))
	if err != nil {
		t.Fatal(err)
	}
	if v != "v2" {
		t.Fatalf("second deploy labeled %q, want v2", v)
	}
	if _, err := r.Invoke(ctx, "mlp@v1", "main", in); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("pinned invoke of swapped-out version = %v, want ErrUnknownModel", err)
	}
	st := r.Models()
	if len(st) != 1 || len(st[0].Versions) != 1 || st[0].Versions[0].Version != "v2" ||
		st[0].Versions[0].State != VersionStable {
		t.Fatalf("Models() after swap = %+v", st)
	}
	if p, err := r.Program("mlp"); err != nil || p == nil {
		t.Fatalf("Program(mlp) = %v, %v", p, err)
	}

	// The shared storage tier is on by default and absent when opted out.
	if _, ok := r.SharedStorageStats(); !ok {
		t.Error("default registry reports no shared storage tier")
	}
	iso := NewRegistry(WithoutSharedStorage())
	if _, ok := iso.SharedStorageStats(); ok {
		t.Error("WithoutSharedStorage registry reports a shared tier")
	}
	iso.Close()
}

// TestRegistryCanaryLifecycle walks a rollout end to end: deploy a canary
// at an exact split, watch the unkeyed stride deliver exactly that
// percentage, promote, and confirm the promoted version owns all traffic.
// Rollback is the mirror: the canary drains, stable is untouched.
func TestRegistryCanaryLifecycle(t *testing.T) {
	ctx := context.Background()
	mcfg := func(seed int64) models.MLPConfig {
		return models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: seed}
	}
	// Per-version references for one shared input: which weights served a
	// response is decidable from its bytes.
	in := TensorValue(models.NewMLP(mcfg(31)).RandomBatch(rand.New(rand.NewSource(2)), 1))
	refOf := func(seed int64) *tensor.Tensor {
		p, err := Compile(models.NewMLP(mcfg(seed)).Module)
		if err != nil {
			t.Fatal(err)
		}
		s := p.NewSession()
		defer s.Close()
		out, err := s.Invoke(ctx, "main", in)
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := out.Tensor()
		return rt
	}
	ref1, ref2 := refOf(31), refOf(32)
	if ref1.Equal(ref2) {
		t.Fatal("the two weight versions are indistinguishable; the oracle is vacuous")
	}

	r := NewRegistry(WithServeDefaults(WithWorkers(2)), WithRegistrySeed(7))
	defer r.Close()
	p1, err := Compile(models.NewMLP(mcfg(31)).Module)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(models.NewMLP(mcfg(32)).Module)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy("mlp", p1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy("mlp", p2, WithCanary(25)); err != nil {
		t.Fatal(err)
	}

	st := r.Models()
	if len(st[0].Versions) != 2 || st[0].Versions[1].State != VersionCanary || st[0].Versions[1].Percent != 25 {
		t.Fatalf("Models() during rollout = %+v", st[0])
	}

	// 200 sequential unkeyed requests: the deterministic stride must land
	// exactly 25% on the canary — not approximately.
	canaryHits := 0
	for i := 0; i < 200; i++ {
		out, err := r.Invoke(ctx, "mlp", "main", in)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out.Tensor()
		switch {
		case got.Equal(ref2):
			canaryHits++
		case !got.Equal(ref1):
			t.Fatal("response matches neither version's reference")
		}
	}
	if canaryHits != 50 {
		t.Fatalf("canary served %d of 200 unkeyed requests, want exactly 50 at 25%%", canaryHits)
	}

	// @latest resolves to the canary during a rollout; the pin still works.
	out, err := r.Invoke(ctx, "mlp@latest", "main", in)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := out.Tensor(); !got.Equal(ref2) {
		t.Error("@latest did not resolve to the canary during rollout")
	}

	// A keyed request never flaps within the epoch.
	first := ""
	for i := 0; i < 20; i++ {
		out, err := r.InvokeOpts(ctx, "mlp", "main", []Value{in}, WithRouteKey("user-1"))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out.Tensor()
		ver := "v1"
		if got.Equal(ref2) {
			ver = "v2"
		}
		if first == "" {
			first = ver
		} else if ver != first {
			t.Fatalf("route key flapped from %s to %s within one epoch", first, ver)
		}
	}

	// Promote: v2 owns everything, v1 drains away.
	if v, err := r.Promote("mlp"); err != nil || v != "v2" {
		t.Fatalf("Promote = %q, %v", v, err)
	}
	for i := 0; i < 20; i++ {
		out, err := r.Invoke(ctx, "mlp", "main", in)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := out.Tensor(); !got.Equal(ref2) {
			t.Fatal("post-promotion response not from the promoted version")
		}
	}
	if _, err := r.Promote("mlp"); !errors.Is(err, ErrNoCanary) {
		t.Errorf("second Promote = %v, want ErrNoCanary", err)
	}

	// Rollback path on a fresh rollout: stable (now v2) keeps serving.
	p3, err := Compile(models.NewMLP(mcfg(31)).Module)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deploy("mlp", p3, WithCanary(50)); err != nil {
		t.Fatal(err)
	}
	if v, err := r.Rollback("mlp"); err != nil || v != "v3" {
		t.Fatalf("Rollback = %q, %v", v, err)
	}
	for i := 0; i < 20; i++ {
		out, err := r.Invoke(ctx, "mlp", "main", in)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := out.Tensor(); !got.Equal(ref2) {
			t.Fatal("post-rollback response not from the stable version")
		}
	}
}

// TestCanaryDeterminism is the split-quality property test: across 200
// seeded epochs the keyed hash split stays within ±1 percentage point of
// the configured percentage, a given key routes identically for the
// epoch's whole life, and the unkeyed stride is not just close but exact.
func TestCanaryDeterminism(t *testing.T) {
	pcts := []int{1, 5, 10, 25, 50, 75, 90, 99}
	const keys = 50_000
	for trial := 0; trial < 200; trial++ {
		pct := pcts[trial%len(pcts)]
		ep := &modelEpoch{percent: pct, seed: splitmix64(uint64(trial) * 0x9e3779b97f4a7c15)}

		// Keyed split: measured share within ±1 point of configured.
		hits := 0
		for k := 0; k < keys; k++ {
			if routeCanary(ep, fmt.Sprintf("req-%d", k)) {
				hits++
			}
		}
		got := 100 * float64(hits) / keys
		if diff := got - float64(pct); diff < -1 || diff > 1 {
			t.Fatalf("trial %d: keyed split %.2f%% for configured %d%% (off by %.2f)", trial, got, pct, diff)
		}

		// Stickiness: re-asking for any key gives the same answer.
		for k := 0; k < 100; k++ {
			key := fmt.Sprintf("req-%d", k)
			if routeCanary(ep, key) != routeCanary(ep, key) {
				t.Fatalf("trial %d: key %q flapped within one epoch", trial, key)
			}
		}

		// Unkeyed stride: of any 100×N consecutive arrivals, exactly pct×N
		// go to the canary.
		strideEp := &modelEpoch{percent: pct}
		strideHits := 0
		for n := 0; n < 1000; n++ {
			if routeCanary(strideEp, "") {
				strideHits++
			}
		}
		if strideHits != 10*pct {
			t.Fatalf("trial %d: stride sent %d of 1000 to a %d%% canary, want exactly %d", trial, strideHits, pct, 10*pct)
		}
	}

	// Different epochs route differently: distinct seeds must re-deal the
	// keyed split (otherwise every rollout canaries the same users).
	a := &modelEpoch{percent: 50, seed: splitmix64(1)}
	b := &modelEpoch{percent: 50, seed: splitmix64(2)}
	flipped := 0
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("req-%d", k)
		if routeCanary(a, key) != routeCanary(b, key) {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("two epochs with different seeds routed 1000 keys identically")
	}
}

// TestRegistrySwapUnderLoad is the zero-downtime proof: 64 concurrent
// clients — 48 invoking a BERT encoder, 16 streaming decoder generations —
// hammer the registry while weights hot-swap v1→v2→v1→… underneath them.
// Run under -race (the registry-smoke Make target does). The oracle:
//
//   - every response is byte-identical to exactly one version's reference
//     for its input — a mixed-version or torn response fails the run;
//   - no request or stream is dropped: admission is configured unbounded,
//     so every error is a failure;
//   - every completed stream matches one version's full reference — a
//     swap never cuts an in-flight generation.
func TestRegistrySwapUnderLoad(t *testing.T) {
	const (
		invokeClients = 48
		streamClients = 16
		iters         = 12
		swaps         = 6
	)
	ctx := context.Background()
	bcfg := func(seed int64) models.BERTConfig {
		return models.BERTConfig{Layers: 1, Hidden: 32, Heads: 2, FFN: 64, Vocab: 128, MaxSeq: 16, Seed: seed}
	}
	dcfg := func(seed int64) models.DecoderConfig {
		return models.DecoderConfig{Vocab: 64, Dim: 16, Layers: 1, Heads: 2, FFN: 32, MaxNew: 8, Seed: seed, Temp: 0.8}
	}

	// Per-input references for both weight versions of both models, from
	// clean single-session programs.
	rng := rand.New(rand.NewSource(9))
	bm := models.NewBERT(bcfg(1))
	bertIn := make([]Value, invokeClients)
	for i := range bertIn {
		bertIn[i] = TensorValue(bm.RandomIDs(rng, 3+i%6))
	}
	bertRef := map[int64][]*tensor.Tensor{}
	for _, seed := range []int64{1, 2} {
		p, err := Compile(models.NewBERT(bcfg(seed)).Module)
		if err != nil {
			t.Fatal(err)
		}
		s := p.NewSession()
		for _, in := range bertIn {
			out, err := s.Invoke(ctx, "main", in)
			if err != nil {
				t.Fatal(err)
			}
			rt, _ := out.Tensor()
			bertRef[seed] = append(bertRef[seed], rt)
		}
		s.Close()
	}
	decRef := map[int64][][]int64{}
	for _, seed := range []int64{1, 2} {
		p, err := Compile(models.NewDecoder(dcfg(seed)).Module)
		if err != nil {
			t.Fatal(err)
		}
		s := p.NewSession()
		for g := 0; g < streamClients; g++ {
			out, err := s.Invoke(ctx, "generate", TensorValue(models.StartToken(int64(g+1))))
			if err != nil {
				t.Fatal(err)
			}
			rt, _ := out.Tensor()
			decRef[seed] = append(decRef[seed], append([]int64(nil), rt.I64()...))
		}
		s.Close()
	}
	for i := range bertRef[1] {
		if bertRef[1][i].Equal(bertRef[2][i]) {
			t.Fatalf("BERT input %d: versions indistinguishable; oracle vacuous", i)
		}
	}

	// Unbounded admission, no breaker, generous timeouts: under a clean
	// swap every single request must succeed. Any error is a drop.
	r := NewRegistry(
		WithServeDefaults(
			WithWorkers(4),
			WithMaxQueue(-1),
			WithBreaker(-1, time.Second),
			WithRequestTimeout(time.Minute),
		),
		WithDrainTimeout(time.Minute),
	)
	defer r.Close()
	deploy := func(name string, seed int64) {
		t.Helper()
		var p *Program
		var err error
		if name == "bert" {
			p, err = Compile(models.NewBERT(bcfg(seed)).Module)
		} else {
			p, err = Compile(models.NewDecoder(dcfg(seed)).Module)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Deploy(name, p); err != nil {
			t.Fatal(err)
		}
	}
	deploy("bert", 1)
	deploy("decoder", 1)

	var (
		wg       sync.WaitGroup
		served   [2]atomic.Int64 // responses per weight version
		stop     atomic.Bool
		failures atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for g := 0; g < invokeClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters && !stop.Load(); i++ {
				out, err := r.Invoke(ctx, "bert", "main", bertIn[g])
				if err != nil {
					fail("invoke client %d iter %d dropped: %v", g, i, err)
					return
				}
				got, _ := out.Tensor()
				switch {
				case got.Equal(bertRef[1][g]):
					served[0].Add(1)
				case got.Equal(bertRef[2][g]):
					served[1].Add(1)
				default:
					fail("invoke client %d iter %d: response matches neither version — mixed-version state", g, i)
					return
				}
			}
		}(g)
	}
	for g := 0; g < streamClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start := TensorValue(models.StartToken(int64(g + 1)))
			for i := 0; i < iters && !stop.Load(); i++ {
				st, err := r.InvokeStream(ctx, "decoder", "generate", start)
				if err != nil {
					fail("stream client %d iter %d dropped at open: %v", g, i, err)
					return
				}
				var got []int64
				for st.Next() {
					tt, _ := st.Value().Tensor()
					got = append(got, tt.I64()...)
				}
				if err := st.Close(); err != nil {
					fail("stream client %d iter %d dropped mid-flight: %v", g, i, err)
					return
				}
				switch {
				case fmt.Sprint(got) == fmt.Sprint(decRef[1][g]):
					served[0].Add(1)
				case fmt.Sprint(got) == fmt.Sprint(decRef[2][g]):
					served[1].Add(1)
				default:
					fail("stream client %d iter %d: tokens match neither version's full reference\n  got %v", g, i, got)
					return
				}
			}
		}(g)
	}

	// The swapper: v1→v2→v1→… on both models while the clients run.
	for s := 0; s < swaps && failures.Load() == 0; s++ {
		seed := int64(1 + (s+1)%2)
		deploy("bert", seed)
		deploy("decoder", seed)
		time.Sleep(5 * time.Millisecond) // let traffic land on the new epoch
	}
	wg.Wait()
	stop.Store(true)

	if failures.Load() > 0 {
		t.FailNow()
	}
	if served[0].Load() == 0 || served[1].Load() == 0 {
		t.Fatalf("traffic never observed both versions (v1-weights=%d v2-weights=%d) — the swap did not happen under load",
			served[0].Load(), served[1].Load())
	}
	total := served[0].Load() + served[1].Load()
	if want := int64(invokeClients*iters + streamClients*iters); total != want {
		t.Fatalf("served %d responses, want %d — requests were dropped silently", total, want)
	}

	// Settle the drains, then check conservation: only the last-deployed
	// versions are live, with their pools intact and nothing in flight.
	time.Sleep(50 * time.Millisecond)
	for _, ms := range r.Models() {
		if len(ms.Versions) != 1 {
			t.Errorf("model %s has %d live versions after the swap storm, want 1", ms.Name, len(ms.Versions))
		}
		for _, vs := range ms.Versions {
			if vs.Stats.Pool.Workers != 4 {
				t.Errorf("%s@%s pool size drifted: %d", ms.Name, vs.Version, vs.Stats.Pool.Workers)
			}
			if vs.InFlight != 0 {
				t.Errorf("%s@%s still holds %d in-flight refs after quiescence", ms.Name, vs.Version, vs.InFlight)
			}
		}
	}
	t.Logf("served: v1-weights=%d v2-weights=%d across %d swaps", served[0].Load(), served[1].Load(), swaps)
}

// TestRegistryShutdownDeployRace pins the shutdown/deploy interaction in
// both orders: after Shutdown every verb is ErrClosed, and a Shutdown
// issued right after a hot-swap drains both the new stable and the
// still-retiring old version within the context bound.
func TestRegistryShutdownDeployRace(t *testing.T) {
	ctx := context.Background()

	t.Run("shutdown-then-deploy", func(t *testing.T) {
		r := NewRegistry(WithServeDefaults(WithWorkers(1)))
		if _, err := r.Deploy("mlp", compileMLPProg(t, 31)); err != nil {
			t.Fatal(err)
		}
		if err := r.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Deploy("mlp", compileMLPProg(t, 32)); !errors.Is(err, ErrClosed) {
			t.Errorf("Deploy after Shutdown = %v, want ErrClosed", err)
		}
		m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 31})
		in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(1)), 1))
		if _, err := r.Invoke(ctx, "mlp", "main", in); !errors.Is(err, ErrClosed) {
			t.Errorf("Invoke after Shutdown = %v, want ErrClosed", err)
		}
		if _, err := r.InvokeStream(ctx, "mlp", "main", in); !errors.Is(err, ErrClosed) {
			t.Errorf("InvokeStream after Shutdown = %v, want ErrClosed", err)
		}
		if _, err := r.Promote("mlp"); !errors.Is(err, ErrClosed) {
			t.Errorf("Promote after Shutdown = %v, want ErrClosed", err)
		}
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("second Shutdown = %v, want nil (idempotent)", err)
		}
	})

	t.Run("deploy-then-shutdown", func(t *testing.T) {
		r := NewRegistry(WithServeDefaults(WithWorkers(2), WithMaxQueue(-1)))
		if _, err := r.Deploy("mlp", compileMLPProg(t, 31)); err != nil {
			t.Fatal(err)
		}
		m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 31})
		in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(1)), 1))

		// In-flight load on v1 across the swap: these requests resolved the
		// old epoch and must complete on it even as Shutdown begins.
		var wg sync.WaitGroup
		var succeeded, closed atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					_, err := r.Invoke(ctx, "mlp", "main", in)
					switch {
					case err == nil:
						succeeded.Add(1)
					case errors.Is(err, ErrClosed):
						closed.Add(1) // admitted after Shutdown flipped: fine
						return
					default:
						t.Errorf("swap+shutdown window produced untyped error: %v", err)
						return
					}
				}
			}()
		}
		// Wait until traffic is actually landing on v1 before swapping, so
		// the drain has something in flight to wait for.
		for succeeded.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		// Hot-swap while loaded, then immediately shut down: v1 is still
		// draining when Shutdown starts, and Shutdown must await that drain
		// too (the background-drain WaitGroup), not just the live epoch.
		if _, err := r.Deploy("mlp", compileMLPProg(t, 32)); err != nil {
			t.Fatal(err)
		}
		sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := r.Shutdown(sctx); err != nil {
			t.Fatalf("Shutdown during swap drain = %v, want clean drain within bound", err)
		}
		wg.Wait()
		if succeeded.Load() == 0 {
			t.Error("no request completed across the swap+shutdown window")
		}
		if _, err := r.Invoke(ctx, "mlp", "main", in); !errors.Is(err, ErrClosed) {
			t.Errorf("Invoke after drained Shutdown = %v, want ErrClosed", err)
		}
	})
}

// BenchmarkRegistryOverhead measures what the registry's routing layer —
// epoch load, version pick, in-flight refcount — adds to a single-model
// invoke over calling the Service directly. The acceptance bar for the
// registry PR is ≤5% single-model throughput regression; run both and
// compare ns/op:
//
//	go test -run '^$' -bench BenchmarkRegistryOverhead -benchtime 2s .
func BenchmarkRegistryOverhead(b *testing.B) {
	ctx := context.Background()
	mcfg := models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 31}
	in := TensorValue(models.NewMLP(mcfg).RandomBatch(rand.New(rand.NewSource(7)), 4))

	b.Run("direct-service", func(b *testing.B) {
		p, err := Compile(models.NewMLP(mcfg).Module)
		if err != nil {
			b.Fatal(err)
		}
		svc, err := p.Serve(WithWorkers(2))
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Invoke(ctx, "main", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("through-registry", func(b *testing.B) {
		r := NewRegistry(WithServeDefaults(WithWorkers(2)))
		defer r.Close()
		if _, err := r.Deploy("mlp", compileMLPProg(b, 31)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Invoke(ctx, "mlp", "main", in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
