package nimble

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"nimble/internal/serve"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// ServiceConfig parameterizes Program.NewService. The zero value is a
// sensible production default: GOMAXPROCS sessions, micro-batching enabled
// for every entry the compiler proved row-separable, bounded per-entry
// admission queues with deadline-aware shedding, and a consecutive-failure
// circuit breaker per entry.
type ServiceConfig struct {
	// Workers is the session-pool size (default GOMAXPROCS).
	Workers int
	// DisableBatching turns micro-batching off; every request then
	// dispatches individually over the pool.
	DisableBatching bool
	// MaxBatch bounds how many requests one dispatch may coalesce
	// (default 16).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company (default 200µs).
	MaxDelay time.Duration
	// MaxQueue bounds each entry's admitted-but-waiting requests; arrivals
	// beyond it are shed with ErrOverloaded instead of queuing unboundedly
	// (default 4×Workers). Negative disables admission queue bounds.
	MaxQueue int
	// RequestTimeout is a per-request deadline applied inside Invoke when
	// the caller's context has none (default 0 = none). Requests whose
	// deadline the current backlog cannot meet are shed on arrival.
	RequestTimeout time.Duration
	// BreakerThreshold opens an entry's circuit breaker after this many
	// consecutive internal faults (panics), shedding its traffic for
	// BreakerCooldown and flipping Health to degraded (default 8;
	// negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before probing
	// again (default 1s).
	BreakerCooldown time.Duration
}

// PoolStats re-exports the session-pool counters.
type PoolStats = serve.Stats

// BatcherStats re-exports the micro-batcher counters.
type BatcherStats = serve.BatchStats

// GateStats re-exports the per-entry admission-control counters.
type GateStats = serve.GateStats

// ServiceStats snapshots a service's pool, batcher, and admission counters.
type ServiceStats struct {
	Pool     PoolStats      `json:"pool"`
	Batchers []BatcherStats `json:"batchers,omitempty"`
	Gates    []GateStats    `json:"gates,omitempty"`
}

// EntryHealth reports one entry's fault state.
type EntryHealth struct {
	Entry string `json:"entry"`
	// Healthy is false while the entry's circuit breaker is open.
	Healthy bool `json:"healthy"`
}

// Health is the service-level health summary: Degraded when any entry's
// circuit breaker is open. /healthz serves it.
type Health struct {
	Degraded bool          `json:"degraded"`
	Entries  []EntryHealth `json:"entries"`
}

// Service executes one Program for concurrent callers: a pool of VM
// sessions shares the frozen executable, entries the compiler proved
// row-separable additionally get a micro-batcher, and every entry is
// fronted by an admission gate — a bounded queue with deadline-aware load
// shedding and a consecutive-failure circuit breaker — so overload
// produces fast typed ErrOverloaded rejections instead of unbounded
// queueing. A VM or kernel panic is isolated to its request: the caller
// gets ErrInternal and the poisoned session is quarantined (replaced by a
// fresh VM), never reused. All methods are safe for concurrent use.
type Service struct {
	p        *Program
	pool     *serve.Pool
	batchers map[string]*serve.Batcher
	gates    map[string]*serve.Gate
	timeout  time.Duration
	closed   atomic.Bool
	inflight atomic.Int64
}

// NewService builds a concurrent serving runtime over the program.
func (p *Program) NewService(cfg ServiceConfig) (*Service, error) {
	if p.unlinked {
		return nil, fmt.Errorf("nimble: program was loaded without a kernel library; pass the compiled Program to Load")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool, err := serve.NewPool(p.exe, workers)
	if err != nil {
		return nil, err
	}
	s := &Service{
		p:        p,
		pool:     pool,
		batchers: map[string]*serve.Batcher{},
		gates:    map[string]*serve.Gate{},
		timeout:  cfg.RequestTimeout,
	}
	for _, name := range p.names {
		s.gates[name] = serve.NewGate(serve.GateConfig{
			Entry:            name,
			Workers:          workers,
			MaxQueue:         cfg.MaxQueue,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
		})
	}
	if !cfg.DisableBatching {
		maxBatch := cfg.MaxBatch
		if maxBatch <= 0 {
			maxBatch = 16
		}
		for _, name := range p.names {
			if p.entries[name].RowSeparable {
				s.batchers[name] = serve.NewBatcher(pool, serve.BatchConfig{
					Entry: name, MaxBatch: maxBatch, MaxDelay: cfg.MaxDelay,
				})
			}
		}
	}
	return s, nil
}

// Program returns the served program (for introspection endpoints).
func (s *Service) Program() *Program { return s.p }

// Workers returns the session-pool size.
func (s *Service) Workers() int { return s.pool.Size() }

// Invoke runs the named entry function, routing through the micro-batcher
// when the entry is row-separable and the call is the single-tensor form,
// and through the session pool otherwise. Before dispatch the request
// passes validation (ErrBadInput without consuming a session) and the
// entry's admission gate (ErrOverloaded with a Retry-After hint when the
// queue is full, the deadline is unmeetable, or the circuit breaker is
// open). Waits are abandoned when ctx is canceled: the error wraps
// ErrCanceled and ctx.Err(). A panic during execution surfaces as
// ErrInternal and quarantines the session it poisoned.
func (s *Service) Invoke(ctx context.Context, entry string, args ...Value) (Value, error) {
	if s.closed.Load() {
		return Value{}, fmt.Errorf("nimble: service: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return Value{}, err
	}
	if s.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
	}
	release, err := s.gates[entry].Admit(ctx)
	if err != nil {
		return Value{}, err
	}
	// In-flight accounting spans admission to release so Shutdown can
	// drain admitted requests; the closed flag is re-checked inside the
	// window so a request racing Shutdown either drains or rejects, never
	// hangs.
	s.inflight.Add(1)
	start := time.Now()
	out, err := s.dispatch(ctx, entry, args)
	release(time.Since(start), err)
	s.inflight.Add(-1)
	return out, err
}

// InvokeStream runs the named entry like Invoke but returns a Stream over
// the values the program emits through stream.emit while it runs. The open
// is synchronous and carries Invoke's full admission semantics: validation
// (ErrBadInput), the entry's gate (ErrOverloaded with a Retry-After hint),
// and the session checkout all happen before InvokeStream returns, so a
// server can map an open failure to a proper HTTP status before it commits
// to a streaming response. Streams bypass the micro-batcher — per-token
// emission is inherently per-request.
//
// The checked-out session, the admission slot, and the in-flight count are
// held for the stream's whole life and released when the run finishes or
// the stream is closed; Shutdown therefore drains open streams exactly
// like in-flight Invokes. RequestTimeout, when configured, bounds the
// entire stream, first token to last.
func (s *Service) InvokeStream(ctx context.Context, entry string, args ...Value) (*Stream, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("nimble: service: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return nil, err
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return nil, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	cancelT := func() {}
	if s.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancelT = context.WithTimeout(ctx, s.timeout)
		}
	}
	release, err := s.gates[entry].Admit(ctx)
	if err != nil {
		cancelT()
		return nil, err
	}
	s.inflight.Add(1)
	start := time.Now()
	fail := func(err error) (*Stream, error) {
		release(time.Since(start), err)
		s.inflight.Add(-1)
		cancelT()
		return nil, err
	}
	// Same race rule as Invoke: the closed flag is re-checked inside the
	// in-flight window so an open racing Shutdown either drains or rejects.
	if s.closed.Load() {
		return fail(fmt.Errorf("nimble: service: %w", ErrClosed))
	}
	sess, err := s.pool.Acquire(ctx)
	if err != nil {
		return fail(err)
	}
	st := runStream(ctx, func(runCtx context.Context, sink func(*tensor.Tensor) error) (vm.Object, error) {
		return sess.InvokeStream(runCtx, sink, entry, objs...)
	}, func(err error) {
		s.pool.Release(sess)
		s.pool.Note(err)
		release(time.Since(start), err)
		s.inflight.Add(-1)
		cancelT()
	})
	return st, nil
}

// dispatch routes one admitted request to the batcher or the pool.
func (s *Service) dispatch(ctx context.Context, entry string, args []Value) (Value, error) {
	if s.closed.Load() {
		return Value{}, fmt.Errorf("nimble: service: %w", ErrClosed)
	}
	if b, ok := s.batchers[entry]; ok && len(args) == 1 {
		if t, isTensor := args[0].Tensor(); isTensor && t != nil && t.Rank() >= 1 {
			out, err := b.Invoke(ctx, t)
			if err != nil {
				return Value{}, err
			}
			return TensorValue(out), nil
		}
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return Value{}, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	out, err := s.pool.Invoke(ctx, entry, objs...)
	if err != nil {
		return Value{}, canceled(err)
	}
	return fromObject(out)
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{Pool: s.pool.Stats()}
	for _, name := range s.p.names {
		if b, ok := s.batchers[name]; ok {
			st.Batchers = append(st.Batchers, b.Stats())
		}
		st.Gates = append(st.Gates, s.gates[name].Stats())
	}
	return st
}

// Health reports the circuit-breaker state per entry: Degraded is true
// while any breaker is open (that entry's recent requests kept dying in
// the VM). Serving layers expose it on /healthz so load balancers stop
// routing to a degraded replica before it pages anyone.
func (s *Service) Health() Health {
	h := Health{}
	for _, name := range s.p.names {
		ok := s.gates[name].Healthy()
		if !ok {
			h.Degraded = true
		}
		h.Entries = append(h.Entries, EntryHealth{Entry: name, Healthy: ok})
	}
	return h
}

// Shutdown closes the service gracefully: new Invokes fail immediately
// with ErrClosed, the batchers drain every request they already accepted,
// and in-flight invocations get until ctx is done to finish. When the
// context fires first the pool closes out from under the stragglers —
// requests still queued on the pool checkout fail with ErrClosed instead
// of hanging — and Shutdown reports how many were cut loose. A nil error
// means every admitted request drained.
func (s *Service) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	// Drain the batchers bounded by the same context: Close answers every
	// accepted request (the pool is still open), but a wedged dispatch
	// must not wedge Shutdown.
	batchersDone := make(chan struct{})
	go func() {
		for _, b := range s.batchers {
			b.Close()
		}
		close(batchersDone)
	}()
	var cut bool
	select {
	case <-batchersDone:
	case <-ctx.Done():
		cut = true
	}
	if !cut {
		// Wait for in-flight requests; poll — shutdown is not a hot path.
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
	drain:
		for s.inflight.Load() > 0 {
			select {
			case <-ctx.Done():
				cut = true
				break drain
			case <-tick.C:
			}
		}
	}
	stragglers := s.inflight.Load()
	s.pool.Close()
	if cut && stragglers > 0 {
		return fmt.Errorf("nimble: service: drain window expired with %d requests in flight: %w", stragglers, ErrClosed)
	}
	return nil
}

// Close shuts the service down with a bounded default drain (5s): accepted
// and in-flight requests get that long to finish, stragglers are rejected
// with ErrClosed instead of hanging. Use Shutdown to choose the bound.
// Idempotent.
func (s *Service) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}
