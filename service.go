package nimble

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"nimble/internal/serve"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// ServiceConfig parameterizes the deprecated NewService constructor. New
// code should use Program.Serve with ServiceOption values; each field here
// corresponds to one option (Workers → WithWorkers, and so on). The zero
// value remains a sensible production default.
//
// Deprecated: use Program.Serve with functional options. ServiceConfig
// predates the scheduler knobs (WithPriorityLanes, WithSchedulerWindow)
// and will not grow them; it remains for one release as a shim.
type ServiceConfig struct {
	// Workers is the session-pool size (default GOMAXPROCS).
	Workers int
	// DisableBatching turns micro-batching off; every request then
	// dispatches individually over the pool.
	DisableBatching bool
	// MaxBatch bounds how many requests one dispatch may coalesce
	// (default 16).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company (default 200µs).
	MaxDelay time.Duration
	// MaxQueue bounds each entry's admitted-but-waiting requests; arrivals
	// beyond it are shed with ErrOverloaded instead of queuing unboundedly
	// (default 4×Workers). Negative disables admission queue bounds.
	MaxQueue int
	// RequestTimeout is a per-request deadline applied inside Invoke when
	// the caller's context has none (default 0 = none). Requests whose
	// deadline the current backlog cannot meet are shed on arrival.
	RequestTimeout time.Duration
	// BreakerThreshold opens an entry's circuit breaker after this many
	// consecutive internal faults (panics), shedding its traffic for
	// BreakerCooldown and flipping Health to degraded (default 8;
	// negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before probing
	// again (default 1s).
	BreakerCooldown time.Duration
}

// PoolStats re-exports the session-pool counters.
type PoolStats = serve.Stats

// BatcherStats re-exports the micro-batcher counters.
type BatcherStats = serve.BatchStats

// GateStats re-exports the per-entry admission-control counters.
type GateStats = serve.GateStats

// SchedulerStats re-exports the per-entry continuous-batching scheduler
// counters: queue depth, batch occupancy, step latency EWMA and p50/p99,
// and shed counts.
type SchedulerStats = serve.SchedStats

// ServiceStats snapshots a service's pool, batcher, admission, and
// scheduler counters.
type ServiceStats struct {
	Pool       PoolStats        `json:"pool"`
	Batchers   []BatcherStats   `json:"batchers,omitempty"`
	Gates      []GateStats      `json:"gates,omitempty"`
	Schedulers []SchedulerStats `json:"schedulers,omitempty"`
}

// EntryHealth reports one entry's fault state.
type EntryHealth struct {
	Entry string `json:"entry"`
	// Healthy is false while the entry's circuit breaker is open.
	Healthy bool `json:"healthy"`
}

// Health is the service-level health summary: Degraded when any entry's
// circuit breaker is open. /healthz serves it.
type Health struct {
	Degraded bool          `json:"degraded"`
	Entries  []EntryHealth `json:"entries"`
}

// Service executes one Program for concurrent callers: a pool of VM
// sessions shares the frozen executable, entries the compiler proved
// row-separable additionally get a micro-batcher, and every entry is
// fronted by an admission gate — a bounded queue with deadline-aware load
// shedding and a consecutive-failure circuit breaker — so overload
// produces fast typed ErrOverloaded rejections instead of unbounded
// queueing.
//
// Streams run under an iteration-level continuous-batching scheduler: a
// decode stream no longer pins a session for its whole generate loop;
// instead each loop iteration is a schedulable step, and one session
// interleaves steps from up to WithSchedulerWindow streams, admitting new
// arrivals mid-flight and retiring finished ones without draining the
// rest. WithPriority selects the request's lane; deadlines both order the
// run queue and shed hopeless arrivals early.
//
// A VM or kernel panic is isolated to its request: the caller gets
// ErrInternal and the poisoned session is quarantined (replaced by a fresh
// VM), never reused. All methods are safe for concurrent use.
type Service struct {
	p          *Program
	pool       *serve.Pool
	batchers   map[string]*serve.Batcher
	gates      map[string]*serve.Gate
	schedulers map[string]*serve.Scheduler
	lanes      int
	timeout    time.Duration
	closed     atomic.Bool
	inflight   atomic.Int64
}

// Serve builds a concurrent serving runtime over the program. With no
// options the defaults serve well: GOMAXPROCS sessions, the
// continuous-batching stream scheduler with an 8-stream window, bounded
// admission queues, micro-batching for row-separable entries, and per-entry
// circuit breakers. See ServiceOption for the knobs.
func (p *Program) Serve(opts ...ServiceOption) (*Service, error) {
	var cfg serviceConfig
	for _, o := range opts {
		o(&cfg)
	}
	return p.buildService(cfg)
}

// NewService builds a concurrent serving runtime over the program.
//
// Deprecated: use Program.Serve with functional options; NewService
// remains as a shim for one release. The scheduler-era knobs
// (WithPriorityLanes, WithSchedulerWindow, WithPinnedStreams) exist only
// as options.
func (p *Program) NewService(cfg ServiceConfig) (*Service, error) {
	return p.buildService(serviceConfig{
		workers:          cfg.Workers,
		disableBatching:  cfg.DisableBatching,
		maxBatch:         cfg.MaxBatch,
		maxDelay:         cfg.MaxDelay,
		maxQueue:         cfg.MaxQueue,
		requestTimeout:   cfg.RequestTimeout,
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
	})
}

func (p *Program) buildService(cfg serviceConfig) (*Service, error) {
	if p.unlinked {
		return nil, fmt.Errorf("nimble: program was loaded without a kernel library; pass the compiled Program to Load")
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lanes := cfg.lanes
	if lanes <= 0 {
		lanes = 1
	}
	pool, err := serve.NewPoolShared(p.exe, workers, cfg.sharedStorage)
	if err != nil {
		return nil, err
	}
	s := &Service{
		p:        p,
		pool:     pool,
		batchers: map[string]*serve.Batcher{},
		gates:    map[string]*serve.Gate{},
		lanes:    lanes,
		timeout:  cfg.requestTimeout,
	}
	for _, name := range p.names {
		s.gates[name] = serve.NewGate(serve.GateConfig{
			Entry:            name,
			Workers:          workers,
			MaxQueue:         cfg.maxQueue,
			BreakerThreshold: cfg.breakerThreshold,
			BreakerCooldown:  cfg.breakerCooldown,
		})
	}
	if !cfg.pinStreams {
		s.schedulers = map[string]*serve.Scheduler{}
		for _, name := range p.names {
			s.schedulers[name] = serve.NewScheduler(pool, serve.SchedConfig{
				Entry:  name,
				Window: cfg.schedWindow,
				Lanes:  lanes,
			})
		}
	}
	if !cfg.disableBatching {
		maxBatch := cfg.maxBatch
		if maxBatch <= 0 {
			maxBatch = 16
		}
		for _, name := range p.names {
			if p.entries[name].RowSeparable {
				s.batchers[name] = serve.NewBatcher(pool, serve.BatchConfig{
					Entry: name, MaxBatch: maxBatch, MaxDelay: cfg.maxDelay,
				})
			}
		}
	}
	return s, nil
}

// Program returns the served program (for introspection endpoints).
func (s *Service) Program() *Program { return s.p }

// Workers returns the session-pool size.
func (s *Service) Workers() int { return s.pool.Size() }

// resolveInvokeOpts folds the per-request options: the lane is clamped to
// the service's configured lane count, and a deadline budget tightens the
// context (the returned cancel is a no-op when nothing changed).
func (s *Service) resolveInvokeOpts(ctx context.Context, opts []InvokeOption) (context.Context, context.CancelFunc, int) {
	var ic invokeConfig
	for _, o := range opts {
		o(&ic)
	}
	lane := ic.lane
	if lane < 0 {
		lane = 0
	}
	if lane >= s.lanes {
		lane = s.lanes - 1
	}
	cancel := context.CancelFunc(func() {})
	if ic.budget > 0 {
		// WithTimeout never loosens: an earlier parent deadline still wins.
		ctx, cancel = context.WithTimeout(ctx, ic.budget)
	} else if s.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
		}
	}
	return ctx, cancel, lane
}

// Invoke runs the named entry function, routing through the micro-batcher
// when the entry is row-separable and the call is the single-tensor form,
// and through the session pool otherwise. Before dispatch the request
// passes validation (ErrBadInput without consuming a session) and the
// entry's admission gate (ErrOverloaded with a Retry-After hint when the
// queue is full, the deadline is unmeetable, or the circuit breaker is
// open). Waits are abandoned when ctx is canceled: the error wraps
// ErrCanceled and ctx.Err(). A panic during execution surfaces as
// ErrInternal and quarantines the session it poisoned.
func (s *Service) Invoke(ctx context.Context, entry string, args ...Value) (Value, error) {
	return s.InvokeOpts(ctx, entry, args)
}

// InvokeOpts is Invoke with per-request options: WithPriority selects the
// pool lane the request waits in under contention, WithDeadlineBudget
// tightens its deadline from arrival.
func (s *Service) InvokeOpts(ctx context.Context, entry string, args []Value, opts ...InvokeOption) (Value, error) {
	if s.closed.Load() {
		return Value{}, fmt.Errorf("nimble: service: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return Value{}, err
	}
	ctx, cancel, lane := s.resolveInvokeOpts(ctx, opts)
	defer cancel()
	release, err := s.gates[entry].Admit(ctx)
	if err != nil {
		return Value{}, err
	}
	// In-flight accounting spans admission to release so Shutdown can
	// drain admitted requests; the closed flag is re-checked inside the
	// window so a request racing Shutdown either drains or rejects, never
	// hangs.
	s.inflight.Add(1)
	start := time.Now()
	out, err := s.dispatch(ctx, entry, lane, args)
	release(time.Since(start), err)
	s.inflight.Add(-1)
	return out, err
}

// InvokeStream runs the named entry like Invoke but returns a Stream over
// the values the program emits through stream.emit while it runs. The open
// is synchronous and carries Invoke's full admission semantics: validation
// (ErrBadInput), the entry's gate (ErrOverloaded with a Retry-After hint),
// and the scheduler's deadline projection all happen before InvokeStream
// returns, so a server can map an open failure to a proper HTTP status
// before it commits to a streaming response. Streams bypass the
// micro-batcher — per-token emission is inherently per-request — and run
// under the continuous-batching scheduler instead: the stream owns no
// session; its decode loop is stepped one iteration at a time, interleaved
// with other streams on whichever session adopts it.
//
// The admission slot and the in-flight count are held for the stream's
// whole life and released when the run finishes or the stream is closed;
// Shutdown therefore drains open streams exactly like in-flight Invokes.
// RequestTimeout, when configured, bounds the entire stream, first token
// to last.
func (s *Service) InvokeStream(ctx context.Context, entry string, args ...Value) (*Stream, error) {
	return s.InvokeStreamOpts(ctx, entry, args)
}

// InvokeStreamOpts is InvokeStream with per-request options: WithPriority
// selects the scheduler lane, WithDeadlineBudget tightens the deadline the
// scheduler orders and sheds by.
func (s *Service) InvokeStreamOpts(ctx context.Context, entry string, args []Value, opts ...InvokeOption) (*Stream, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("nimble: service: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return nil, err
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return nil, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	ctx, cancelT, lane := s.resolveInvokeOpts(ctx, opts)
	release, err := s.gates[entry].Admit(ctx)
	if err != nil {
		cancelT()
		return nil, err
	}
	s.inflight.Add(1)
	start := time.Now()
	fail := func(err error) (*Stream, error) {
		release(time.Since(start), err)
		s.inflight.Add(-1)
		cancelT()
		return nil, err
	}
	// Same race rule as Invoke: the closed flag is re-checked inside the
	// in-flight window so an open racing Shutdown either drains or rejects.
	if s.closed.Load() {
		return fail(fmt.Errorf("nimble: service: %w", ErrClosed))
	}
	cleanup := func(err error) {
		release(time.Since(start), err)
		s.inflight.Add(-1)
		cancelT()
	}
	if sched, ok := s.schedulers[entry]; ok {
		st := runStream(ctx, func(runCtx context.Context, sink func(*tensor.Tensor) error) (vm.Object, error) {
			return sched.Stream(runCtx, lane, sink, entry, objs...)
		}, cleanup)
		return st, nil
	}
	// Pinned mode (WithPinnedStreams): the stream checks out a session and
	// holds it for its whole run.
	sess, err := s.pool.AcquireLane(ctx, lane)
	if err != nil {
		return fail(err)
	}
	st := runStream(ctx, func(runCtx context.Context, sink func(*tensor.Tensor) error) (vm.Object, error) {
		return sess.InvokeStream(runCtx, sink, entry, objs...)
	}, func(err error) {
		s.pool.Release(sess)
		s.pool.Note(err)
		cleanup(err)
	})
	return st, nil
}

// dispatch routes one admitted request to the batcher or the pool.
func (s *Service) dispatch(ctx context.Context, entry string, lane int, args []Value) (Value, error) {
	if s.closed.Load() {
		return Value{}, fmt.Errorf("nimble: service: %w", ErrClosed)
	}
	if b, ok := s.batchers[entry]; ok && len(args) == 1 {
		if t, isTensor := args[0].Tensor(); isTensor && t != nil && t.Rank() >= 1 {
			out, err := b.Invoke(ctx, t)
			if err != nil {
				return Value{}, err
			}
			return TensorValue(out), nil
		}
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return Value{}, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	out, err := s.pool.InvokeLane(ctx, lane, entry, objs...)
	if err != nil {
		return Value{}, canceled(err)
	}
	return fromObject(out)
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{Pool: s.pool.Stats()}
	for _, name := range s.p.names {
		if b, ok := s.batchers[name]; ok {
			st.Batchers = append(st.Batchers, b.Stats())
		}
		st.Gates = append(st.Gates, s.gates[name].Stats())
		if sc, ok := s.schedulers[name]; ok {
			st.Schedulers = append(st.Schedulers, sc.Stats())
		}
	}
	return st
}

// Health reports the circuit-breaker state per entry: Degraded is true
// while any breaker is open (that entry's recent requests kept dying in
// the VM). Serving layers expose it on /healthz so load balancers stop
// routing to a degraded replica before it pages anyone.
func (s *Service) Health() Health {
	h := Health{}
	for _, name := range s.p.names {
		ok := s.gates[name].Healthy()
		if !ok {
			h.Degraded = true
		}
		h.Entries = append(h.Entries, EntryHealth{Entry: name, Healthy: ok})
	}
	return h
}

// Shutdown closes the service gracefully: new Invokes fail immediately
// with ErrClosed, the batchers drain every request they already accepted,
// and in-flight invocations get until ctx is done to finish. When the
// context fires first the schedulers and pool close out from under the
// stragglers — streams still queued fail with ErrClosed, active decode
// loops are retired at their next iteration boundary — and Shutdown
// reports how many were cut loose. A nil error means every admitted
// request drained.
func (s *Service) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	// Drain the batchers bounded by the same context: Close answers every
	// accepted request (the pool is still open), but a wedged dispatch
	// must not wedge Shutdown.
	batchersDone := make(chan struct{})
	go func() {
		for _, b := range s.batchers {
			b.Close()
		}
		close(batchersDone)
	}()
	var cut bool
	select {
	case <-batchersDone:
	case <-ctx.Done():
		cut = true
	}
	if !cut {
		// Wait for in-flight requests; poll — shutdown is not a hot path.
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
	drain:
		for s.inflight.Load() > 0 {
			select {
			case <-ctx.Done():
				cut = true
				break drain
			case <-tick.C:
			}
		}
	}
	stragglers := s.inflight.Load()
	for _, sc := range s.schedulers {
		sc.Close()
	}
	s.pool.Close()
	if cut && stragglers > 0 {
		return fmt.Errorf("nimble: service: drain window expired with %d requests in flight: %w", stragglers, ErrClosed)
	}
	return nil
}

// Close shuts the service down with a bounded default drain (5s): accepted
// and in-flight requests get that long to finish, stragglers are rejected
// with ErrClosed instead of hanging. Use Shutdown to choose the bound.
// Idempotent.
func (s *Service) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}
