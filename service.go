package nimble

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"nimble/internal/serve"
	"nimble/internal/vm"
)

// ServiceConfig parameterizes Program.NewService. The zero value is a
// sensible production default: GOMAXPROCS sessions, micro-batching enabled
// for every entry the compiler proved row-separable.
type ServiceConfig struct {
	// Workers is the session-pool size (default GOMAXPROCS).
	Workers int
	// DisableBatching turns micro-batching off; every request then
	// dispatches individually over the pool.
	DisableBatching bool
	// MaxBatch bounds how many requests one dispatch may coalesce
	// (default 16).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company (default 200µs).
	MaxDelay time.Duration
}

// PoolStats re-exports the session-pool counters.
type PoolStats = serve.Stats

// BatcherStats re-exports the micro-batcher counters.
type BatcherStats = serve.BatchStats

// ServiceStats snapshots a service's pool and batcher counters.
type ServiceStats struct {
	Pool     PoolStats      `json:"pool"`
	Batchers []BatcherStats `json:"batchers,omitempty"`
}

// Service executes one Program for concurrent callers: a pool of VM
// sessions shares the frozen executable, and entries the compiler proved
// row-separable additionally get a micro-batcher that coalesces concurrent
// single-tensor requests into one kernel dispatch. Callers do not choose a
// transport — Invoke routes each request to the batcher or the pool by the
// entry's signature. All methods are safe for concurrent use.
type Service struct {
	p        *Program
	pool     *serve.Pool
	batchers map[string]*serve.Batcher
	closed   atomic.Bool
}

// NewService builds a concurrent serving runtime over the program.
func (p *Program) NewService(cfg ServiceConfig) (*Service, error) {
	if p.unlinked {
		return nil, fmt.Errorf("nimble: program was loaded without a kernel library; pass the compiled Program to Load")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool, err := serve.NewPool(p.exe, workers)
	if err != nil {
		return nil, err
	}
	s := &Service{p: p, pool: pool, batchers: map[string]*serve.Batcher{}}
	if !cfg.DisableBatching {
		maxBatch := cfg.MaxBatch
		if maxBatch <= 0 {
			maxBatch = 16
		}
		for _, name := range p.names {
			if p.entries[name].RowSeparable {
				s.batchers[name] = serve.NewBatcher(pool, serve.BatchConfig{
					Entry: name, MaxBatch: maxBatch, MaxDelay: cfg.MaxDelay,
				})
			}
		}
	}
	return s, nil
}

// Program returns the served program (for introspection endpoints).
func (s *Service) Program() *Program { return s.p }

// Workers returns the session-pool size.
func (s *Service) Workers() int { return s.pool.Size() }

// Invoke runs the named entry function, routing through the micro-batcher
// when the entry is row-separable and the call is the single-tensor form,
// and through the session pool otherwise. Waits (pool checkout, batch
// assembly) are abandoned when ctx is canceled: the error wraps
// ErrCanceled and ctx.Err(), and a request canceled while queued in a
// batch is withdrawn without disturbing its batch-mates.
func (s *Service) Invoke(ctx context.Context, entry string, args ...Value) (Value, error) {
	if s.closed.Load() {
		return Value{}, fmt.Errorf("nimble: service: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return Value{}, err
	}
	if b, ok := s.batchers[entry]; ok && len(args) == 1 {
		if t, isTensor := args[0].Tensor(); isTensor && t != nil && t.Rank() >= 1 {
			out, err := b.Invoke(ctx, t)
			if err != nil {
				return Value{}, err
			}
			return TensorValue(out), nil
		}
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return Value{}, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	out, err := s.pool.Invoke(ctx, entry, objs...)
	if err != nil {
		return Value{}, canceled(err)
	}
	return fromObject(out)
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{Pool: s.pool.Stats()}
	for _, name := range s.p.names {
		if b, ok := s.batchers[name]; ok {
			st.Batchers = append(st.Batchers, b.Stats())
		}
	}
	return st
}

// Close drains the batchers (accepted requests are still answered) and
// closes the pool; later Invokes return ErrClosed. Idempotent.
func (s *Service) Close() {
	if s.closed.Swap(true) {
		return
	}
	for _, b := range s.batchers {
		b.Close()
	}
	s.pool.Close()
}
