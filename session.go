package nimble

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"nimble/internal/serve"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// Session is a single-threaded execution context over a Program: it owns
// the mutable per-execution state (runtime storage pool, recycled frames,
// scratch) that makes repeated invocations allocation-free, and is NOT
// safe for concurrent use — one goroutine at a time. For concurrent
// traffic use Program.NewService.
type Session struct {
	p      *Program
	m      *vm.VM
	prof   *vm.Profiler
	closed bool
	// streaming is set while an InvokeStream is open. It is the one field
	// touched from another goroutine (the stream's producer clears it when
	// the run unwinds), hence atomic; everything else keeps the session's
	// single-goroutine discipline.
	streaming atomic.Bool
}

// NewSession creates an execution session over the program. Sessions are
// cheap: any number may exist over one Program, each on its own goroutine.
// The first session (or service, or Save) freezes the executable: from
// here on the shared artifact is immutable.
func (p *Program) NewSession() *Session {
	p.exe.Freeze()
	return &Session{p: p, m: vm.New(p.exe)}
}

// Invoke runs the named entry function. The context is honored at VM call
// boundaries, so canceling mid-run stops a long dynamic execution; the
// returned error then wraps ErrCanceled and ctx.Err(). Unknown entries,
// arity mismatches, and signature-violating arguments fail fast with
// ErrUnknownEntry / ErrBadArity / ErrBadInput. A VM or kernel panic is
// recovered into ErrInternal, and the session — whose reusable state may
// be inconsistent — refuses further use with ErrClosed.
func (s *Session) Invoke(ctx context.Context, entry string, args ...Value) (v Value, err error) {
	if s.streaming.Load() {
		return Value{}, fmt.Errorf("nimble: session: %w", ErrBusy)
	}
	if s.closed {
		return Value{}, fmt.Errorf("nimble: session: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return Value{}, err
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return Value{}, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	defer func() {
		if rec := recover(); rec != nil {
			// A session has no pool to mint a replacement from: poison it
			// outright. The caller opens a fresh one; the Program is immutable
			// and unharmed.
			s.closed = true
			v, err = Value{}, serve.Internal(entry, rec, debug.Stack())
		}
	}()
	out, err := s.m.InvokeContext(ctx, entry, objs...)
	if err != nil {
		return Value{}, canceled(err)
	}
	return fromObject(out)
}

// InvokeStream runs the named entry like Invoke, but returns immediately
// with a Stream over the values the program emits through the IR's
// stream.emit operator (a decoder's per-token output) while the run
// continues on a background goroutine. Validation is synchronous: unknown
// entries, arity mismatches, and signature violations fail here, before any
// stream exists. The run itself is still single-threaded on this session's
// VM — until the stream is drained or closed, further Invoke/InvokeStream
// calls fail fast with ErrBusy rather than racing the open run. A panic
// mid-stream poisons the session (ErrClosed thereafter) and surfaces as
// ErrInternal from the stream's Err.
func (s *Session) InvokeStream(ctx context.Context, entry string, args ...Value) (*Stream, error) {
	if s.streaming.Load() {
		return nil, fmt.Errorf("nimble: session: %w", ErrBusy)
	}
	if s.closed {
		return nil, fmt.Errorf("nimble: session: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return nil, err
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return nil, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	s.streaming.Store(true)
	st := runStream(ctx, func(runCtx context.Context, sink func(*tensor.Tensor) error) (out vm.Object, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				s.closed = true
				out, err = nil, serve.Internal(entry, rec, debug.Stack())
			}
		}()
		return s.m.InvokeStreamContext(runCtx, sink, entry, objs...)
	}, func(error) {
		// Clearing the flag is the release point: an Invoke that observes
		// streaming == false happens-after everything the stream's run did,
		// including a poisoning panic's closed = true.
		s.streaming.Store(false)
	})
	return st, nil
}

// Close marks the session unusable; later Invokes return ErrClosed.
// Idempotent. (Sessions hold no OS resources — Close exists so lifecycle
// bugs surface as typed errors instead of silent reuse.)
func (s *Session) Close() error {
	s.closed = true
	return nil
}

// EnableProfiling attaches an instruction/kernel profiler to the session.
// Must be called before the first Invoke being measured.
func (s *Session) EnableProfiling() {
	s.prof = vm.NewProfiler()
	s.m.SetProfiler(s.prof)
}

// Profile renders the profiler summary (instruction counts, per-kernel
// time); empty until EnableProfiling is called.
func (s *Session) Profile() string {
	if s.prof == nil {
		return ""
	}
	return s.prof.Summary()
}
