package nimble

import (
	"context"
	"fmt"
	"runtime/debug"

	"nimble/internal/serve"
	"nimble/internal/vm"
)

// Session is a single-threaded execution context over a Program: it owns
// the mutable per-execution state (runtime storage pool, recycled frames,
// scratch) that makes repeated invocations allocation-free, and is NOT
// safe for concurrent use — one goroutine at a time. For concurrent
// traffic use Program.NewService.
type Session struct {
	p      *Program
	m      *vm.VM
	prof   *vm.Profiler
	closed bool
}

// NewSession creates an execution session over the program. Sessions are
// cheap: any number may exist over one Program, each on its own goroutine.
// The first session (or service, or Save) freezes the executable: from
// here on the shared artifact is immutable.
func (p *Program) NewSession() *Session {
	p.exe.Freeze()
	return &Session{p: p, m: vm.New(p.exe)}
}

// Invoke runs the named entry function. The context is honored at VM call
// boundaries, so canceling mid-run stops a long dynamic execution; the
// returned error then wraps ErrCanceled and ctx.Err(). Unknown entries,
// arity mismatches, and signature-violating arguments fail fast with
// ErrUnknownEntry / ErrBadArity / ErrBadInput. A VM or kernel panic is
// recovered into ErrInternal, and the session — whose reusable state may
// be inconsistent — refuses further use with ErrClosed.
func (s *Session) Invoke(ctx context.Context, entry string, args ...Value) (v Value, err error) {
	if s.closed {
		return Value{}, fmt.Errorf("nimble: session: %w", ErrClosed)
	}
	if _, err := s.p.validate(entry, args); err != nil {
		return Value{}, err
	}
	objs := make([]vm.Object, len(args))
	for i, a := range args {
		o, err := toObject(a)
		if err != nil {
			return Value{}, fmt.Errorf("nimble: %s arg %d: %w", entry, i, err)
		}
		objs[i] = o
	}
	defer func() {
		if rec := recover(); rec != nil {
			// A session has no pool to mint a replacement from: poison it
			// outright. The caller opens a fresh one; the Program is immutable
			// and unharmed.
			s.closed = true
			v, err = Value{}, serve.Internal(entry, rec, debug.Stack())
		}
	}()
	out, err := s.m.InvokeContext(ctx, entry, objs...)
	if err != nil {
		return Value{}, canceled(err)
	}
	return fromObject(out)
}

// Close marks the session unusable; later Invokes return ErrClosed.
// Idempotent. (Sessions hold no OS resources — Close exists so lifecycle
// bugs surface as typed errors instead of silent reuse.)
func (s *Session) Close() error {
	s.closed = true
	return nil
}

// EnableProfiling attaches an instruction/kernel profiler to the session.
// Must be called before the first Invoke being measured.
func (s *Session) EnableProfiling() {
	s.prof = vm.NewProfiler()
	s.m.SetProfiler(s.prof)
}

// Profile renders the profiler summary (instruction counts, per-kernel
// time); empty until EnableProfiling is called.
func (s *Session) Profile() string {
	if s.prof == nil {
		return ""
	}
	return s.prof.Summary()
}
