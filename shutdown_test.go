package nimble

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nimble/internal/faults"
	"nimble/internal/models"
)

// TestShutdownDrainsInFlight: Shutdown with a generous context lets every
// admitted request finish (no ErrClosed for them), rejects new arrivals
// immediately, and returns nil.
func TestShutdownDrainsInFlight(t *testing.T) {
	mcfg := models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 9}
	p, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	// Every kernel dispatch stalls 5ms so requests are reliably in flight
	// when Shutdown lands.
	inj := faults.NewInjector(faults.Config{Seed: 5, SlowPer1024: 1024, SlowDelay: 5 * time.Millisecond})
	if err := inj.WrapExecutable(p.exe); err != nil {
		t.Fatal(err)
	}
	svc, err := p.NewService(ServiceConfig{Workers: 2, DisableBatching: true, MaxQueue: 16})
	if err != nil {
		t.Fatal(err)
	}

	m := models.NewMLP(mcfg)
	in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(1)), 2))
	const n = 8
	errs := make([]error, n)
	var started, wg sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			_, errs[i] = svc.Invoke(context.Background(), "main", in)
		}(i)
	}
	started.Wait()
	time.Sleep(2 * time.Millisecond) // let the invokes pass admission

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with room to drain returned %v", err)
	}
	wg.Wait()
	for i, e := range errs {
		// A request that had not passed the closed-check yet may reject
		// with ErrClosed; one that was admitted must have drained cleanly.
		if e != nil && !errors.Is(e, ErrClosed) {
			t.Errorf("request %d: %v", i, e)
		}
	}
	// New arrivals reject immediately after shutdown.
	if _, err := svc.Invoke(context.Background(), "main", in); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown invoke error = %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown returned %v", err)
	}
}

// TestShutdownBoundedDrain: when the drain context expires first, Shutdown
// returns promptly with an ErrClosed-wrapping error reporting the
// stragglers instead of hanging, and the straggling requests themselves
// resolve (with ErrClosed/ErrCanceled), not hang.
func TestShutdownBoundedDrain(t *testing.T) {
	mcfg := models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 9}
	p, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	// Stalls far longer than the drain window.
	inj := faults.NewInjector(faults.Config{Seed: 6, SlowPer1024: 1024, SlowDelay: 300 * time.Millisecond})
	if err := inj.WrapExecutable(p.exe); err != nil {
		t.Fatal(err)
	}
	svc, err := p.NewService(ServiceConfig{Workers: 1, DisableBatching: true, MaxQueue: 4})
	if err != nil {
		t.Fatal(err)
	}

	m := models.NewMLP(mcfg)
	in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(2)), 2))
	done := make(chan error, 1)
	go func() {
		_, err := svc.Invoke(context.Background(), "main", in)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // the invoke is inside its 300ms stall

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = svc.Shutdown(ctx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded Shutdown took %v", elapsed)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("expired-drain Shutdown returned %v, want an ErrClosed-wrapping straggler report", err)
	}

	// The straggler itself resolves rather than hanging forever.
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request hung after bounded shutdown")
	}
}
