package nimble

import (
	"fmt"
	"strings"

	"nimble/internal/ir"
)

// TypeKind names the shape of a TypeInfo, chosen to read well in JSON
// (the /models endpoint of cmd/nimble-serve serializes these verbatim).
type TypeKind string

const (
	// KindTensorType is an n-dimensional tensor with dtype and (possibly
	// dynamic) shape.
	KindTensorType TypeKind = "tensor"
	// KindADTType is an algebraic data type; ADT describes its
	// constructors.
	KindADTType TypeKind = "adt"
	// KindTupleType is a fixed-arity tuple; Fields describes the elements.
	KindTupleType TypeKind = "tuple"
	// KindFuncType is a function/closure type (not invocable over HTTP).
	KindFuncType TypeKind = "func"
	// KindUnknownType marks a type the program cannot describe (e.g. an
	// executable loaded without its compile-time metadata).
	KindUnknownType TypeKind = "unknown"
)

// DimAny is the wildcard extent in TypeInfo.Shape: the dimension is
// resolved at runtime (the paper's Any dimension).
const DimAny = ir.DimAny

// TypeInfo is the public, serializable description of one IR type.
type TypeInfo struct {
	Kind TypeKind `json:"kind"`
	// DType is the element type name ("float32", "int64", ...) for tensors.
	DType string `json:"dtype,omitempty"`
	// Shape lists tensor extents; DimAny (-1) marks a dynamic dimension.
	// A nil shape on a tensor is a scalar.
	Shape []int `json:"shape,omitempty"`
	// ADT describes an algebraic data type's constructors.
	ADT *ADTInfo `json:"adt,omitempty"`
	// Fields describes tuple elements.
	Fields []TypeInfo `json:"fields,omitempty"`
}

// ADTInfo describes an algebraic data type. Nested references to the same
// type (a List's Cons carrying a List) are broken by name: the inner
// reference repeats Name with nil Constructors.
type ADTInfo struct {
	Name         string     `json:"name"`
	Constructors []CtorInfo `json:"constructors,omitempty"`
}

// CtorInfo describes one ADT constructor: its name, the runtime tag used
// to build values (ADTValue(tag, ...)), and its field types.
type CtorInfo struct {
	Name   string     `json:"name"`
	Tag    int        `json:"tag"`
	Fields []TypeInfo `json:"fields,omitempty"`
}

// EntrySignature is the introspected signature of one entry function,
// derived from compile-time type information. It is what lets generic
// callers (the HTTP layer, benchmark harnesses) build arguments without a
// per-model adapter.
type EntrySignature struct {
	Name   string     `json:"name"`
	Params []TypeInfo `json:"params"`
	Result TypeInfo   `json:"result"`
	// RowSeparable records the compiler's proof that the entry maps input
	// rows to output rows independently — the property that makes
	// micro-batching a semantics-preserving rewrite. Service routes
	// single-tensor calls to row-separable entries through the batcher.
	RowSeparable bool `json:"row_separable,omitempty"`
}

func (t TypeInfo) String() string {
	switch t.Kind {
	case KindTensorType:
		if len(t.Shape) == 0 {
			return fmt.Sprintf("Tensor[(), %s]", t.DType)
		}
		parts := make([]string, len(t.Shape))
		for i, d := range t.Shape {
			if d == DimAny {
				parts[i] = "Any"
			} else {
				parts[i] = fmt.Sprintf("%d", d)
			}
		}
		return fmt.Sprintf("Tensor[(%s), %s]", strings.Join(parts, ", "), t.DType)
	case KindADTType:
		if t.ADT != nil {
			return t.ADT.Name
		}
		return "adt"
	case KindTupleType:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case KindFuncType:
		return "func"
	}
	return "?"
}

func (s EntrySignature) String() string {
	parts := make([]string, len(s.Params))
	for i, p := range s.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s(%s) -> %s", s.Name, strings.Join(parts, ", "), s.Result)
}

// typeInfoOf converts an IR type into its public description. seen guards
// recursive ADTs: a type definition already being described is referenced
// by name only.
func typeInfoOf(t ir.Type, seen map[*ir.TypeDef]bool) TypeInfo {
	switch n := t.(type) {
	case *ir.TensorType:
		info := TypeInfo{Kind: KindTensorType, DType: n.DType.String()}
		for _, d := range n.Dims {
			if d.IsAny() {
				info.Shape = append(info.Shape, DimAny)
			} else {
				info.Shape = append(info.Shape, d.Value)
			}
		}
		return info
	case *ir.ADTType:
		def := n.Def
		if seen[def] {
			return TypeInfo{Kind: KindADTType, ADT: &ADTInfo{Name: def.Name}}
		}
		seen[def] = true
		defer delete(seen, def)
		adt := &ADTInfo{Name: def.Name}
		for _, c := range def.Constructors {
			ci := CtorInfo{Name: c.Name, Tag: c.Tag}
			for _, f := range c.Fields {
				ci.Fields = append(ci.Fields, typeInfoOf(f, seen))
			}
			adt.Constructors = append(adt.Constructors, ci)
		}
		return TypeInfo{Kind: KindADTType, ADT: adt}
	case *ir.TupleType:
		info := TypeInfo{Kind: KindTupleType}
		for _, f := range n.Fields {
			info.Fields = append(info.Fields, typeInfoOf(f, seen))
		}
		return info
	case *ir.FuncType:
		return TypeInfo{Kind: KindFuncType}
	}
	return TypeInfo{Kind: KindUnknownType}
}
