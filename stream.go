package nimble

import (
	"context"

	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// Stream is the handle returned by Session.InvokeStream and
// Service.InvokeStream: a pull iterator over the values the entry emits
// through the IR's stream.emit operator while the invocation is still
// running, followed by the entry's final result. The canonical producer is
// the decoder model, whose generate loop emits each sampled token the
// moment it exists — callers render tokens live instead of waiting for the
// full sequence.
//
// Usage:
//
//	st, err := sess.InvokeStream(ctx, "generate", start)
//	if err != nil { ... }         // open errors: ErrUnknownEntry, ErrBadInput, ErrOverloaded
//	defer st.Close()
//	for st.Next() {
//	    emit(st.Value())
//	}
//	out, err := st.Result()       // final result; err is the run's outcome
//
// The emitting program does not run ahead of the consumer: each emission
// blocks until Next receives it (or the context is canceled), so a slow
// consumer exerts backpressure all the way into the VM loop and an
// abandoned stream stops computing instead of generating into the void.
//
// A Stream is single-consumer: Next/Value must stay on one goroutine.
// Close and the producer side are synchronized internally.
type Stream struct {
	cancel context.CancelFunc
	ch     chan Value
	done   chan struct{}
	cur    Value
	result Value
	err    error
	closed bool
}

// runStream launches the producer goroutine: run executes the entry with a
// sink that hands each emitted tensor to the consumer, and cleanup (which
// may be nil) releases whatever resources the invocation pinned — pool
// session, admission slot, in-flight count — strictly after the run has
// returned. The final error is classified (context errors gain the
// ErrCanceled wrap) before it becomes visible through Err/Result.
func runStream(ctx context.Context, run func(context.Context, func(*tensor.Tensor) error) (vm.Object, error), cleanup func(error)) *Stream {
	runCtx, cancel := context.WithCancel(ctx)
	st := &Stream{cancel: cancel, ch: make(chan Value), done: make(chan struct{})}
	go func() {
		out, err := run(runCtx, func(t *tensor.Tensor) error {
			// Cancellation must win deterministically: Close's drain loop
			// keeps receiving from ch, so after cancel the select below is a
			// coin flip between the send and the done channel — a stream
			// closed before its first Next could keep "winning" the send and
			// generate its entire sequence into the drain. Checking the
			// context first bounds a canceled run to at most one more emit.
			if err := runCtx.Err(); err != nil {
				return err
			}
			select {
			case st.ch <- TensorValue(t):
				return nil
			case <-runCtx.Done():
				return runCtx.Err()
			}
		})
		var res Value
		if err == nil {
			res, err = fromObject(out)
		}
		st.result, st.err = res, canceled(err)
		// Result/err are published before ch closes: a consumer that sees
		// Next return false may read them without further synchronization.
		close(st.ch)
		if cleanup != nil {
			cleanup(err)
		}
		cancel()
		close(st.done)
	}()
	return st
}

// Next advances to the next emitted value, blocking until the program emits
// one. It returns false when the run has finished — successfully, with an
// error, or by cancellation; Err distinguishes which.
//
// vet:no-ctx — the wait is bounded by the context the stream was created
// with (InvokeStream's ctx): cancellation unwinds the producer, which
// closes the channel.
func (st *Stream) Next() bool {
	v, ok := <-st.ch
	if !ok {
		return false
	}
	st.cur = v
	return true
}

// Value returns the value Next advanced to.
func (st *Stream) Value() Value { return st.cur }

// Err returns the invocation's final error, blocking until the run
// finishes. Nil means the entry returned normally; otherwise the error is
// from the same families Invoke returns (ErrCanceled, ErrInternal, ...).
// Tokens received before a mid-stream error are partial output — the
// stream's outcome is this error, not the token count.
//
// vet:no-ctx — bounded by the stream's creation context, like Next.
func (st *Stream) Err() error {
	<-st.done
	return st.err
}

// Result returns the entry's final return value, blocking until the run
// finishes (draining is the caller's job — Result does not consume pending
// tokens, so call it after Next returns false, or from a goroutine that is
// not the consumer only if the consumer keeps draining).
//
// vet:no-ctx — bounded by the stream's creation context, like Next.
func (st *Stream) Result() (Value, error) {
	<-st.done
	return st.result, st.err
}

// Close abandons the stream: the run's context is canceled, pending and
// future emissions are discarded, and Close blocks until the producer has
// fully unwound (its pooled session released, in-flight accounting
// decremented). It returns the run's final error — ErrCanceled when Close
// itself stopped an unfinished run, nil or the run's own error when the
// stream was already drained. Idempotent; safe after Next returned false.
//
// vet:no-ctx — Close cancels the run's own context first, so the drain and
// the wait for the producer to unwind are both bounded by that
// cancellation.
func (st *Stream) Close() error {
	if !st.closed {
		st.closed = true
		st.cancel()
		for range st.ch { // discard pending emissions so the producer unblocks
		}
	}
	<-st.done
	return st.err
}
