package nimble

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// TestStreamCloseBeforeFirstRead is the regression test for the
// close-before-read race: Close cancels the run's context and then drains
// the token channel, so from the producer's point of view a send and the
// cancellation are BOTH always ready. Without the context check before
// each emit, the select's coin flip let a closed-but-never-read stream keep
// winning the send and generate its entire sequence into the drain. The
// producer here parks until Close has committed to canceling, then tries
// 256 emits: the sink must refuse every one of them.
func TestStreamCloseBeforeFirstRead(t *testing.T) {
	for i := 0; i < 50; i++ {
		var emitted atomic.Int64
		produced := make(chan struct{})
		st := runStream(context.Background(), func(runCtx context.Context, sink func(*tensor.Tensor) error) (vm.Object, error) {
			close(produced)
			<-runCtx.Done() // park until Close's cancel lands
			for j := 0; j < 256; j++ {
				if err := sink(tensor.FromI64([]int64{int64(j)}, 1)); err != nil {
					return nil, err
				}
				emitted.Add(1)
			}
			return nil, nil
		}, nil)
		<-produced
		if err := st.Close(); !errors.Is(err, ErrCanceled) {
			t.Fatalf("iter %d: Close = %v, want ErrCanceled", i, err)
		}
		if n := emitted.Load(); n != 0 {
			t.Fatalf("iter %d: %d emits won the race against a closed stream; cancellation must be deterministic", i, n)
		}
	}
}

// TestStreamCloseBoundsRunningProducer: a producer that is actively
// generating (not parked) when Close arrives may legitimately complete the
// emit already in flight, but no more than that one.
func TestStreamCloseBoundsRunningProducer(t *testing.T) {
	var emitted atomic.Int64
	first := make(chan struct{})
	st := runStream(context.Background(), func(runCtx context.Context, sink func(*tensor.Tensor) error) (vm.Object, error) {
		for j := 0; j < 1024; j++ {
			if err := sink(tensor.FromI64([]int64{int64(j)}, 1)); err != nil {
				return nil, err
			}
			if emitted.Add(1) == 1 {
				close(first)
			}
		}
		return nil, nil
	}, nil)
	if !st.Next() {
		t.Fatal("no first token")
	}
	<-first
	if err := st.Close(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Close = %v, want ErrCanceled", err)
	}
	// One emit may have been committed concurrently with Close; the context
	// check bounds the overshoot to exactly that.
	if n := emitted.Load(); n > 2 {
		t.Fatalf("producer emitted %d tokens after Close; cancellation did not bound the run", n)
	}
}
