package nimble_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"nimble"
	"nimble/models"
)

func compileDecoder(t *testing.T) *nimble.Program {
	t.Helper()
	p, err := nimble.Compile(models.NewDecoder(models.DefaultDecoderConfig()).Module)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tokensOf flattens a decode result ([MaxNew] int64 tensor Value) to a slice.
func tokensOf(t *testing.T, v nimble.Value) []int64 {
	t.Helper()
	tt, ok := v.Tensor()
	if !ok {
		t.Fatalf("decode result is %v, want tensor", v.Kind())
	}
	return append([]int64(nil), tt.I64()...)
}

// TestSessionStreamMatchesInvoke is the tentpole acceptance check at the
// public layer: a streamed greedy decode delivers every token live, and the
// streamed sequence is identical to the same entry's non-streaming Invoke —
// for both the greedy and the temperature-sampled entry.
func TestSessionStreamMatchesInvoke(t *testing.T) {
	p := compileDecoder(t)
	for _, entry := range []string{"generate", "generate_sampled"} {
		t.Run(entry, func(t *testing.T) {
			ctx := context.Background()
			start := models.StartTokenValue(7)

			sess := p.NewSession()
			want, err := sess.Invoke(ctx, entry, start)
			if err != nil {
				t.Fatal(err)
			}
			wantToks := tokensOf(t, want)
			if len(wantToks) != models.DefaultDecoderConfig().MaxNew {
				t.Fatalf("invoke produced %d tokens, want %d", len(wantToks), models.DefaultDecoderConfig().MaxNew)
			}

			st, err := sess.InvokeStream(ctx, entry, start)
			if err != nil {
				t.Fatal(err)
			}
			var got []int64
			for st.Next() {
				got = append(got, tokensOf(t, st.Value())...)
			}
			if err := st.Err(); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(wantToks) {
				t.Errorf("streamed tokens diverge from Invoke:\n  stream %v\n  invoke %v", got, wantToks)
			}
			res, err := st.Result()
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(tokensOf(t, res)) != fmt.Sprint(wantToks) {
				t.Errorf("stream Result diverges from Invoke")
			}
			if err := st.Close(); err != nil {
				t.Errorf("Close after drain: %v", err)
			}
		})
	}
}

// TestSessionStreamBusy pins the single-threaded discipline: while a stream
// is open the session refuses new work with ErrBusy, and recovers once the
// stream is drained.
func TestSessionStreamBusy(t *testing.T) {
	p := compileDecoder(t)
	sess := p.NewSession()
	ctx := context.Background()
	start := models.StartTokenValue(3)

	st, err := sess.InvokeStream(ctx, "generate", start)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatalf("stream produced no tokens: %v", st.Err())
	}
	if _, err := sess.Invoke(ctx, "generate", start); !errors.Is(err, nimble.ErrBusy) {
		t.Errorf("Invoke during open stream: got %v, want ErrBusy", err)
	}
	if _, err := sess.InvokeStream(ctx, "generate", start); !errors.Is(err, nimble.ErrBusy) {
		t.Errorf("InvokeStream during open stream: got %v, want ErrBusy", err)
	}
	if err := st.Close(); err != nil && !errors.Is(err, nimble.ErrCanceled) {
		t.Fatalf("Close: %v", err)
	}
	if _, err := sess.Invoke(ctx, "generate", start); err != nil {
		t.Errorf("Invoke after stream closed: %v", err)
	}
}

// TestStreamOpenErrors pins that streaming validation is synchronous: open
// failures come back as typed errors from InvokeStream itself, never from a
// half-open stream.
func TestStreamOpenErrors(t *testing.T) {
	p := compileDecoder(t)
	sess := p.NewSession()
	ctx := context.Background()
	if _, err := sess.InvokeStream(ctx, "nope", models.StartTokenValue(1)); !errors.Is(err, nimble.ErrUnknownEntry) {
		t.Errorf("unknown entry: got %v, want ErrUnknownEntry", err)
	}
	if _, err := sess.InvokeStream(ctx, "generate"); !errors.Is(err, nimble.ErrBadArity) {
		t.Errorf("bad arity: got %v, want ErrBadArity", err)
	}
	svc, err := p.NewService(nimble.ServiceConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.InvokeStream(ctx, "nope", models.StartTokenValue(1)); !errors.Is(err, nimble.ErrUnknownEntry) {
		t.Errorf("service unknown entry: got %v, want ErrUnknownEntry", err)
	}
}

// TestServiceStreamConcurrent drives several concurrent streams through a
// two-session pool under the race detector: every stream's token sequence
// must match the reference Invoke, and when all streams finish the pool and
// admission accounting must be fully released (a later Invoke succeeds and
// Shutdown drains cleanly).
func TestServiceStreamConcurrent(t *testing.T) {
	p := compileDecoder(t)
	ctx := context.Background()
	want := map[int64][]int64{}
	ref := p.NewSession()
	for id := int64(0); id < 4; id++ {
		out, err := ref.Invoke(ctx, "generate", models.StartTokenValue(id))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = tokensOf(t, out)
	}

	svc, err := p.NewService(nimble.ServiceConfig{Workers: 2, DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for worker := 0; worker < 8; worker++ {
		id := int64(worker % 4)
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := svc.InvokeStream(ctx, "generate", models.StartTokenValue(id))
			if err != nil {
				errs <- err
				return
			}
			var got []int64
			for st.Next() {
				tt, _ := st.Value().Tensor()
				got = append(got, tt.I64()...)
			}
			if err := st.Err(); err != nil {
				errs <- err
				return
			}
			if fmt.Sprint(got) != fmt.Sprint(want[id]) {
				errs <- fmt.Errorf("start %d: streamed %v, want %v", id, got, want[id])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := svc.Invoke(ctx, "generate", models.StartTokenValue(0)); err != nil {
		t.Errorf("Invoke after streams drained: %v", err)
	}
	if st := svc.Stats(); st.Pool.InFlight != 0 {
		t.Errorf("pool reports %d in flight after all streams finished", st.Pool.InFlight)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown after streams drained: %v", err)
	}
}

// TestServiceStreamCloseReleases pins that abandoning a stream returns its
// session to the pool: with a single worker, a Close mid-stream must let the
// next request through instead of deadlocking on the checkout.
func TestServiceStreamCloseReleases(t *testing.T) {
	p := compileDecoder(t)
	svc, err := p.NewService(nimble.ServiceConfig{Workers: 1, DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	st, err := svc.InvokeStream(ctx, "generate", models.StartTokenValue(5))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatalf("no first token: %v", st.Err())
	}
	if err := st.Close(); err != nil && !errors.Is(err, nimble.ErrCanceled) {
		t.Fatalf("Close mid-stream: %v", err)
	}
	if _, err := svc.Invoke(ctx, "generate", models.StartTokenValue(5)); err != nil {
		t.Fatalf("Invoke after mid-stream Close (session leaked?): %v", err)
	}
}
