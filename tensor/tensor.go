// Package tensor is the public tensor vocabulary of Nimble: dense
// n-dimensional arrays with a small dtype set, used both to build IR
// constants (weights) and to exchange data with compiled programs through
// nimble.Value. Every type is an alias of the runtime's internal tensor,
// so values constructed here flow through the whole stack without copies.
package tensor

import (
	"math/rand"

	itensor "nimble/internal/tensor"
)

type (
	// Tensor is a dense n-dimensional array.
	Tensor = itensor.Tensor
	// Shape is a concrete extent list.
	Shape = itensor.Shape
	// DType enumerates element types.
	DType = itensor.DType
)

// Element types.
const (
	Float32 = itensor.Float32
	Float64 = itensor.Float64
	Int32   = itensor.Int32
	Int64   = itensor.Int64
	Bool    = itensor.Bool
)

// New allocates a zero-filled tensor.
func New(dt DType, shape ...int) *Tensor { return itensor.New(dt, shape...) }

// FromF32 wraps a float32 slice (no copy) with the given shape.
func FromF32(data []float32, shape ...int) *Tensor { return itensor.FromF32(data, shape...) }

// FromF64 wraps a float64 slice with the given shape.
func FromF64(data []float64, shape ...int) *Tensor { return itensor.FromF64(data, shape...) }

// FromI32 wraps an int32 slice with the given shape.
func FromI32(data []int32, shape ...int) *Tensor { return itensor.FromI32(data, shape...) }

// FromI64 wraps an int64 slice with the given shape.
func FromI64(data []int64, shape ...int) *Tensor { return itensor.FromI64(data, shape...) }

// FromBool wraps a bool slice with the given shape.
func FromBool(data []bool, shape ...int) *Tensor { return itensor.FromBool(data, shape...) }

// Scalar builds a rank-0 float32 tensor; ScalarI64 and ScalarBool the
// integer and boolean forms.
func Scalar(v float32) *Tensor  { return itensor.Scalar(v) }
func ScalarI64(v int64) *Tensor { return itensor.ScalarI64(v) }
func ScalarBool(v bool) *Tensor { return itensor.ScalarBool(v) }

// Random draws a float32 tensor with entries in [-scale, scale).
func Random(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	return itensor.Random(rng, scale, shape...)
}

// RandomInts draws an int64 tensor with entries in [0, high).
func RandomInts(rng *rand.Rand, high int64, shape ...int) *Tensor {
	return itensor.RandomInts(rng, high, shape...)
}

// ParseDType parses a dtype name ("float32", "int64", ...).
func ParseDType(s string) (DType, error) { return itensor.ParseDType(s) }
