package nimble

import (
	"fmt"
)

// badInputError is the concrete ErrBadInput: where in the argument the
// violation sits (a dotted path, capped so a 50k-node list cannot build a
// megabyte of context) and what was wrong.
type badInputError struct {
	entry  string
	path   string
	detail string
}

func (e *badInputError) Error() string {
	return fmt.Sprintf("%v: %s: %s: %s", ErrBadInput, e.entry, e.path, e.detail)
}

func (e *badInputError) Is(target error) bool { return target == ErrBadInput }

const maxInputPath = 160

// prefixPath prepends one path segment while unwinding a validation
// failure. Only the error path pays for string building — the success path
// of checkValue allocates nothing — and the path stops growing at
// maxInputPath so deep recursive inputs stay cheap to reject.
func prefixPath(err error, seg string) error {
	e, ok := err.(*badInputError)
	if !ok {
		return err
	}
	switch {
	case e.path == "":
		e.path = seg
	case len(e.path) < maxInputPath:
		e.path = seg + "." + e.path
	case e.path[0] != '.':
		e.path = "..." + e.path
	}
	return e
}

// checkValue validates one argument value against its signature parameter
// type, before the request can touch a VM: kinds must agree, tensor dtype
// and rank must match, static dimensions must match exactly (Any
// dimensions are free — they are the paper's point), ADT tags must name a
// real constructor and carry its arity, and tuple widths must line up.
// Violations come back in the ErrBadInput family so servers answer 400
// without burning a session on a request that can only panic.
//
// Signatures degraded to KindUnknownType (a Program loaded without its
// compile-time metadata) accept anything — the VM is then the only
// authority left.
func checkValue(entry string, v Value, p TypeInfo) error {
	if p.Kind == KindUnknownType {
		if v.Kind() == KindInvalid {
			return &badInputError{entry: entry, detail: "zero Value"}
		}
		return nil
	}
	switch v.Kind() {
	case KindTensor:
		if p.Kind != KindTensorType {
			return &badInputError{entry: entry, detail: fmt.Sprintf("got a tensor, want %s", p.Kind)}
		}
		t, _ := v.Tensor()
		if t == nil {
			return &badInputError{entry: entry, detail: "nil tensor"}
		}
		if p.DType != "" && p.DType != t.DType().String() {
			return &badInputError{entry: entry, detail: fmt.Sprintf("dtype %s, want %s", t.DType(), p.DType)}
		}
		if t.Rank() != len(p.Shape) {
			return &badInputError{entry: entry, detail: fmt.Sprintf("rank %d (shape %v), want rank %d (%v)",
				t.Rank(), t.Shape(), len(p.Shape), p.Shape)}
		}
		for i, d := range p.Shape {
			if d != DimAny && t.Shape()[i] != d {
				return &badInputError{entry: entry, detail: fmt.Sprintf("dim %d is %d, want %d (shape %v vs %v)",
					i, t.Shape()[i], d, t.Shape(), p.Shape)}
			}
		}
	case KindADT:
		if p.Kind != KindADTType {
			return &badInputError{entry: entry, detail: fmt.Sprintf("got an ADT value, want %s", p.Kind)}
		}
		if p.ADT == nil || p.ADT.Constructors == nil {
			// A by-name reference to a recursive type: the constructor set
			// is not repeated here, so only the kind is checkable.
			return nil
		}
		var ctor *CtorInfo
		for i := range p.ADT.Constructors {
			if p.ADT.Constructors[i].Tag == v.Tag() {
				ctor = &p.ADT.Constructors[i]
				break
			}
		}
		if ctor == nil {
			return &badInputError{entry: entry,
				detail: fmt.Sprintf("tag %d names no constructor of %s", v.Tag(), p.ADT.Name)}
		}
		if len(v.Fields()) != len(ctor.Fields) {
			return &badInputError{entry: entry,
				detail: fmt.Sprintf("%s.%s takes %d fields, got %d", p.ADT.Name, ctor.Name, len(ctor.Fields), len(v.Fields()))}
		}
		for i, f := range v.Fields() {
			ft := ctor.Fields[i]
			if ft.Kind == KindADTType && ft.ADT != nil && ft.ADT.Constructors == nil && ft.ADT.Name == p.ADT.Name {
				// Recursive reference: reuse the full constructor set so a
				// whole list/tree is validated, not just its first node.
				ft.ADT = p.ADT
			}
			if err := checkValue(entry, f, ft); err != nil {
				return prefixPath(err, fmt.Sprintf("%s[%d]", ctor.Name, i))
			}
		}
	case KindTuple:
		if p.Kind != KindTupleType {
			return &badInputError{entry: entry, detail: fmt.Sprintf("got a tuple, want %s", p.Kind)}
		}
		if len(v.Fields()) != len(p.Fields) {
			return &badInputError{entry: entry, detail: fmt.Sprintf("%d tuple fields, want %d", len(v.Fields()), len(p.Fields))}
		}
		for i, f := range v.Fields() {
			if err := checkValue(entry, f, p.Fields[i]); err != nil {
				return prefixPath(err, fmt.Sprintf("[%d]", i))
			}
		}
	default:
		return &badInputError{entry: entry, detail: "zero Value"}
	}
	return nil
}

// checkArgs validates every argument against the signature.
func checkArgs(sig *EntrySignature, args []Value) error {
	for i, a := range args {
		if err := checkValue(sig.Name, a, sig.Params[i]); err != nil {
			return prefixPath(err, fmt.Sprintf("arg %d", i))
		}
	}
	return nil
}
