package nimble

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"nimble/internal/models"
	"nimble/internal/tensor"
)

// TestInvokeRejectsBadInput: kind, dtype, rank, and static-dimension
// violations are rejected at the Invoke boundary with ErrBadInput — before
// a session is consumed — while Any dimensions stay free.
func TestInvokeRejectsBadInput(t *testing.T) {
	m, svc := mlpService(t, ServiceConfig{Workers: 1, DisableBatching: true})
	ctx := context.Background()
	good := m.RandomBatch(rand.New(rand.NewSource(1)), 3)

	cases := []struct {
		name string
		arg  Value
		frag string // substring the error must carry
	}{
		{"zero value", Value{}, "zero Value"},
		{"wrong kind", ADTValue(0), "want tensor"},
		{"nil tensor", TensorValue(nil), "nil tensor"},
		{"wrong dtype", TensorValue(tensor.New(tensor.Int64, 3, 8)), "dtype"},
		{"wrong rank", TensorValue(tensor.New(tensor.Float32, 8)), "rank"},
		{"wrong static dim", TensorValue(tensor.New(tensor.Float32, 3, 9)), "dim"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := svc.Invoke(ctx, "main", tc.arg)
			if !errors.Is(err, ErrBadInput) {
				t.Fatalf("error = %v, want ErrBadInput", err)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
			if st := svc.Stats().Pool; st.Invocations != 0 {
				t.Errorf("rejected request consumed a session: %+v", st)
			}
		})
	}

	// Arity errors are in the family too (servers map one family → 400).
	_, err := svc.Invoke(ctx, "main")
	if !errors.Is(err, ErrBadInput) || !errors.Is(err, ErrBadArity) {
		t.Fatalf("arity error = %v, want ErrBadArity ∧ ErrBadInput", err)
	}

	// The batch (Any) dimension is genuinely free.
	for _, rows := range []int{1, 5, 17} {
		in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(2)), rows))
		if _, err := svc.Invoke(ctx, "main", in); err != nil {
			t.Fatalf("valid %d-row batch rejected: %v", rows, err)
		}
	}
	if _, err := svc.Invoke(ctx, "main", TensorValue(good)); err != nil {
		t.Fatalf("valid input rejected after bad ones: %v", err)
	}
}

// TestValidateADTInputs: constructor tags, field arity, and recursive
// reference types are checked all the way down a structured input, and the
// error names the path to the violation.
func TestValidateADTInputs(t *testing.T) {
	cfg := models.LSTMConfig{Input: 4, Hidden: 4, Layers: 1, Seed: 4}
	m := models.NewLSTM(cfg)
	p, err := Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	sess := p.NewSession()
	defer sess.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))

	// Valid list runs.
	if _, err := sess.Invoke(ctx, "main", lstmList(t, m, rng, 3)); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}

	// A bogus constructor tag.
	bad := ADTValue(max(m.NilC.Tag, m.ConsC.Tag) + 7)
	if _, err := sess.Invoke(ctx, "main", bad); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bogus tag error = %v, want ErrBadInput", err)
	}

	// Wrong field arity for Cons.
	bad = ADTValue(m.ConsC.Tag, TensorValue(m.RandomSteps(rng, 1)[0]))
	if _, err := sess.Invoke(ctx, "main", bad); !errors.Is(err, ErrBadInput) {
		t.Fatalf("arity-violating ctor error = %v, want ErrBadInput", err)
	}

	// A violation buried inside the recursive tail: node 2 carries a tensor
	// of the wrong dtype. The recursive by-name reference must still be
	// validated, and the error path should point into the structure.
	deep := ADTValue(m.NilC.Tag)
	wrongDT := tensor.New(tensor.Int64, 1, cfg.Input)
	deep = ADTValue(m.ConsC.Tag, TensorValue(wrongDT), deep)
	deep = ADTValue(m.ConsC.Tag, TensorValue(m.RandomSteps(rng, 1)[0]), deep)
	_, err = sess.Invoke(ctx, "main", deep)
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("deep dtype violation error = %v, want ErrBadInput", err)
	}
	if !strings.Contains(err.Error(), "dtype") {
		t.Errorf("deep violation error %q does not name the dtype mismatch", err)
	}
}

// TestValidateDeepListCheap: validating a 50k-node recursive input is
// linear and allocation-light — the error path (capped) is only built on
// failure, never on success.
func TestValidateDeepListCheap(t *testing.T) {
	cfg := models.LSTMConfig{Input: 8, Hidden: 8, Layers: 1, Seed: 4}
	m := models.NewLSTM(cfg)
	p, err := Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	deep := lstmList(t, m, rng, 50000)
	sig, ok := p.entries["main"]
	if !ok {
		t.Fatal("no main entry")
	}
	if err := checkArgs(sig, []Value{deep}); err != nil {
		t.Fatalf("valid deep list rejected: %v", err)
	}

	// Poison the innermost node and confirm the error path stays capped.
	poisoned := ADTValue(m.ConsC.Tag, TensorValue(tensor.New(tensor.Int64, 1, cfg.Input)), ADTValue(m.NilC.Tag))
	for i := 0; i < 5000; i++ {
		poisoned = ADTValue(m.ConsC.Tag, TensorValue(m.RandomSteps(rng, 1)[0]), poisoned)
	}
	err = checkArgs(sig, []Value{poisoned})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("deep poison error = %v, want ErrBadInput", err)
	}
	if len(err.Error()) > 1024 {
		t.Errorf("deep violation error is %d bytes; the path cap is not working", len(err.Error()))
	}
}

// lstmList builds an n-step LSTM input list (same shape as objValue, local
// rng) — kept separate so validation tests do not depend on cancel_test.
func lstmList(t *testing.T, m *models.LSTM, rng *rand.Rand, n int) Value {
	t.Helper()
	steps := m.RandomSteps(rng, n)
	v := ADTValue(m.NilC.Tag)
	for i := len(steps) - 1; i >= 0; i-- {
		v = ADTValue(m.ConsC.Tag, TensorValue(steps[i]), v)
	}
	return v
}
