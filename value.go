package nimble

import (
	"fmt"
	"strings"

	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// ValueKind discriminates the payload of a Value.
type ValueKind uint8

const (
	// KindInvalid is the zero Value (no payload).
	KindInvalid ValueKind = iota
	// KindTensor wraps a *tensor.Tensor.
	KindTensor
	// KindADT is an algebraic-data-type value: a constructor tag plus
	// fields (an LSTM's cons-list, a Tree-LSTM's tree).
	KindADT
	// KindTuple is a fixed-arity tuple of values.
	KindTuple
)

func (k ValueKind) String() string {
	switch k {
	case KindTensor:
		return "tensor"
	case KindADT:
		return "adt"
	case KindTuple:
		return "tuple"
	}
	return "invalid"
}

// Value is the single argument/result currency of the public API: every
// Invoke — session or service, any model — takes and returns Values.
// Tensors carry the bulk data; ADT and tuple values express the paper's
// dynamic data structures (lists, trees) without touching VM internals.
// The zero Value is invalid and rejected by Invoke.
type Value struct {
	kind   ValueKind
	t      *tensor.Tensor
	tag    int
	fields []Value
}

// TensorValue wraps a tensor.
func TensorValue(t *tensor.Tensor) Value {
	return Value{kind: KindTensor, t: t}
}

// ADTValue builds an algebraic-data-type value from a constructor tag and
// its fields. Tags come from EntrySignature's ADT description (or the
// model's constructor metadata).
func ADTValue(tag int, fields ...Value) Value {
	return Value{kind: KindADT, tag: tag, fields: fields}
}

// TupleValue builds a tuple value.
func TupleValue(fields ...Value) Value {
	return Value{kind: KindTuple, tag: vm.TupleTag, fields: fields}
}

// Kind reports the value's payload kind.
func (v Value) Kind() ValueKind { return v.kind }

// Tensor returns the wrapped tensor, or (nil, false) for non-tensor values.
func (v Value) Tensor() (*tensor.Tensor, bool) {
	if v.kind != KindTensor {
		return nil, false
	}
	return v.t, true
}

// Tag returns the ADT constructor tag (meaningful only for KindADT).
func (v Value) Tag() int { return v.tag }

// Fields returns the ADT or tuple fields (nil for other kinds). The slice
// must not be mutated.
func (v Value) Fields() []Value { return v.fields }

func (v Value) String() string {
	switch v.kind {
	case KindTensor:
		return v.t.String()
	case KindADT, KindTuple:
		parts := make([]string, len(v.fields))
		for i, f := range v.fields {
			parts[i] = f.String()
		}
		if v.kind == KindTuple {
			return "(" + strings.Join(parts, ", ") + ")"
		}
		return fmt.Sprintf("ctor#%d(%s)", v.tag, strings.Join(parts, ", "))
	}
	return "<invalid>"
}

// toObject lowers a public Value into the VM's object representation.
func toObject(v Value) (vm.Object, error) {
	switch v.kind {
	case KindTensor:
		if v.t == nil {
			return nil, fmt.Errorf("nimble: nil tensor value")
		}
		return vm.NewTensorObj(v.t), nil
	case KindADT, KindTuple:
		fields := make([]vm.Object, len(v.fields))
		for i, f := range v.fields {
			o, err := toObject(f)
			if err != nil {
				return nil, err
			}
			fields[i] = o
		}
		return &vm.ADT{Tag: v.tag, Fields: fields}, nil
	}
	return nil, fmt.Errorf("nimble: invalid (zero) Value")
}

// fromObject lifts a VM result back into a public Value.
func fromObject(o vm.Object) (Value, error) {
	switch n := o.(type) {
	case *vm.TensorObj:
		return TensorValue(n.T), nil
	case *vm.ADT:
		fields := make([]Value, len(n.Fields))
		for i, f := range n.Fields {
			v, err := fromObject(f)
			if err != nil {
				return Value{}, err
			}
			fields[i] = v
		}
		if n.Tag == vm.TupleTag {
			return TupleValue(fields...), nil
		}
		return ADTValue(n.Tag, fields...), nil
	}
	return Value{}, fmt.Errorf("nimble: entry returned %T, which has no public representation", o)
}
