package nimble_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nimble"
	"nimble/internal/vm"
	"nimble/models"
)

func compileMLPVerified(t *testing.T, opts ...nimble.Option) *nimble.Program {
	t.Helper()
	m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 1})
	p, err := nimble.Compile(m.Module, opts...)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// TestWithVerifyCompiles pins that check mode accepts real pipeline output:
// the verifier runs after every pass and over the bytecode, and the
// resulting program still executes.
func TestWithVerifyCompiles(t *testing.T) {
	p := compileMLPVerified(t, nimble.WithVerify())
	if err := p.Verify(); err != nil {
		t.Fatalf("Program.Verify on a compiled program: %v", err)
	}
	s := p.NewSession()
	defer s.Close()
}

// TestVerifyEnvVar pins that NIMBLE_VERIFY=1 switches check mode on without
// code changes — the escape hatch for bisecting a miscompile in any harness.
func TestVerifyEnvVar(t *testing.T) {
	t.Setenv("NIMBLE_VERIFY", "1")
	compileMLPVerified(t)
}

// TestLoadRejectsMutatedExecutable pins the untrusted-input path: a
// serialized executable whose bytecode was tampered with must come back as
// a typed ErrVerify, not execute and not panic.
func TestLoadRejectsMutatedExecutable(t *testing.T) {
	// A structurally valid executable whose one function reads a register
	// that was never written and jumps backward without the loop mark.
	exe := vm.NewExecutable()
	exe.Code = []vm.Instruction{
		{Op: vm.OpMove, Dst: 1, A: 2},
		{Op: vm.OpGoto, B: 0, Off1: -1},
	}
	exe.AddFunc(vm.VMFunc{Name: "main", NumParams: 1, RegCount: 3, Start: 0, Len: 2})
	exe.Freeze()
	var buf bytes.Buffer
	if _, err := exe.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	_, err := nimble.Load(&buf, nil)
	if err == nil {
		t.Fatal("Load accepted a mutated executable")
	}
	if !errors.Is(err, nimble.ErrVerify) {
		t.Fatalf("error does not match ErrVerify: %v", err)
	}
	var ve *nimble.VerificationError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want *VerificationError: %v", err, err)
	}
	if ve.Stage != "loaded executable" {
		t.Errorf("Stage = %q, want %q", ve.Stage, "loaded executable")
	}
	if len(ve.Violations) == 0 || !strings.Contains(ve.Violations[0], "[exe.") {
		t.Errorf("violations do not carry catalog IDs: %q", ve.Violations)
	}
}

// TestSaveLoadVerifiesClean pins the positive Load path: a Save/Load
// round-trip of a real program passes the executable verifier.
func TestSaveLoadVerifiesClean(t *testing.T) {
	p := compileMLPVerified(t, nimble.WithVerify())
	var buf bytes.Buffer
	if _, err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := nimble.Load(&buf, p)
	if err != nil {
		t.Fatalf("round-trip load: %v", err)
	}
	if err := loaded.Verify(); err != nil {
		t.Fatalf("Program.Verify on a loaded program: %v", err)
	}
}
